//! Columnar trace store and bulk ingestion for spot-price archives.
//!
//! Three pieces, all serving the same goal — loading and querying
//! hundreds of (type, zone) markets with millions of price points without
//! the per-line, per-point overheads of the plain CSV path:
//!
//! - [`parse_csv_bytes`] — a single-pass byte-level scanner for the
//!   `PriceTrace::to_csv` format. No per-line allocations: each
//!   `time,price` pair is parsed with hand-rolled integer/decimal fast
//!   paths (bit-exact with `f64::parse` in the ranges they accept — see
//!   the proofs at [`parse_time_micros`] and [`parse_price`]) and falls
//!   back to `f64::parse` for any other shape, so odd-but-valid forms
//!   (`3e-2`, 17-digit shortest round-trips) parse identically to the old
//!   per-line path.
//! - [`TraceLibrary`] — an ordered set of traces with a versioned binary
//!   on-disk format (`.stl`): per-market columnar blocks of varint
//!   delta-encoded microsecond timestamps plus raw `f64`-bit prices, a
//!   library-level index (market → block offset, point count, time span,
//!   on-demand price), and a [`Digest64`] integrity footer. Writes are
//!   atomic (tmp + rename); loads verify the digest and decode blocks in
//!   parallel via [`parallel_map`]. Decoding is fully defensive: a
//!   truncated or corrupted archive is an `Err`, never a panic.
//! - [`TraceCursor`] — an amortized-O(1) cursor for the monotone lookups
//!   the simulation actually performs (`price_at`, `next_change_after`
//!   with mostly non-decreasing `t`), falling back to an `O(log n)`
//!   re-seek when time regresses. Results are *identical* to the
//!   binary-search path by construction.
//!
//! # `.stl` layout (version 1)
//!
//! ```text
//! offset 0      b"SPOTSTL1"                      8-byte magic + version
//!               market_count                     varint
//! blocks        per market, in library order:
//!                 type_name                      varint length + UTF-8
//!                 zone                           varint length + UTF-8
//!                 on_demand_price                8 bytes, f64 bits LE
//!                 point_count                    varint
//!                 time_codec                     1 byte: 1 when every
//!                                                delta fits in a u32,
//!                                                else 0
//!                 timestamps                     first absolute micros as
//!                                                varint, then deltas ≥ 1
//!                                                — varint (codec 0) or
//!                                                fixed u32 LE (codec 1)
//!                 prices                         point_count × 8 bytes,
//!                                                f64 bits LE
//! index         per market, same order:
//!                 type_name, zone                as above
//!                 block_offset                   varint (from file start)
//!                 point_count                    varint
//!                 start_micros, end_micros       varint (0 when empty)
//!                 on_demand_price                8 bytes, f64 bits LE
//! footer        index_offset                     8 bytes, u64 LE
//!               digest                           8 bytes, u64 LE —
//!                                                Digest64 over every
//!                                                preceding byte, absorbed
//!                                                as LE u64 words (tail
//!                                                bytes fed individually)
//!               b"SPOTSEND"                      8-byte tail magic
//! ```
//!
//! Delta encoding exploits the data's shape: change points arrive minutes
//! apart, so deltas of ~10^8 µs fit in four bytes instead of eight fixed
//! ones, and a strictly-increasing series is *encoded* as such — a delta
//! of zero in the file is structurally invalid, so a decoded series never
//! trips `StepSeries::from_points`'s panics. The per-block codec byte
//! picks the cheapest faithful delta form: when every delta in a block
//! fits in a u32 (true for almost all real blocks — a u32 holds ~71
//! minutes of microseconds), deltas are fixed-width u32s, which decode
//! with a couple of ALU ops per point and are no larger than the 4–5-byte
//! varints they replace; blocks with any wider gap fall back to varints.
//! The choice is a pure function of the data, so re-encoding a decoded
//! library is byte-identical.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use spotcheck_simcore::digest::Digest64;
use spotcheck_simcore::metrics;
use spotcheck_simcore::parallel::{configured_threads, parallel_map};
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::SimTime;
use spotcheck_simcore::varint::{get_u64, put_u64};

use crate::market::MarketId;
use crate::trace::PriceTrace;

/// Magic bytes opening a `.stl` archive; the trailing digit is the format
/// version.
pub const STL_MAGIC: &[u8; 8] = b"SPOTSTL1";
/// Magic bytes closing a `.stl` archive.
const STL_TAIL: &[u8; 8] = b"SPOTSEND";
/// Footer length: index offset + digest + tail magic.
const FOOTER_LEN: usize = 8 + 8 + 8;

// ---------------------------------------------------------------------------
// CSV scanning
// ---------------------------------------------------------------------------

/// Parses one trace from CSV bytes (the [`PriceTrace::to_csv`] format) in
/// a single pass over the input.
///
/// Semantics match the historical per-line parser, with two deliberate
/// hardenings: non-increasing timestamps and non-finite prices are
/// line-numbered errors here instead of `StepSeries` panics. `\r\n` line
/// endings are accepted, blank lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns a description of the first malformed line (numbered from 1,
/// the header being line 1).
pub fn parse_csv_bytes(bytes: &[u8]) -> Result<PriceTrace, String> {
    let mut rest = bytes;
    let header = next_line(&mut rest).ok_or("empty trace file")?;
    let header = std::str::from_utf8(header).map_err(|_| "header is not UTF-8".to_string())?;
    let header = header
        .strip_prefix("# ")
        .ok_or("missing `# market=... od=...` header")?;
    let mut market = None;
    let mut od = None;
    for field in header.split_whitespace() {
        if let Some(m) = field.strip_prefix("market=") {
            let (ty, zone) = m
                .split_once('@')
                .ok_or("market field must be `type@zone`")?;
            market = Some(MarketId::new(ty, zone));
        } else if let Some(p) = field.strip_prefix("od=") {
            od = Some(
                p.parse::<f64>()
                    .map_err(|e| format!("bad on-demand price: {e}"))?,
            );
        }
    }
    let market = market.ok_or("header missing market=")?;
    let od = od.ok_or("header missing od=")?;
    if !(od.is_finite() && od > 0.0) {
        return Err(format!("on-demand price must be positive, got {od}"));
    }

    // ~24 bytes per `time,price` line; one up-front reservation replaces
    // the per-point doubling of the old push-into-StepSeries loop.
    let mut points: Vec<(SimTime, f64)> = Vec::with_capacity(rest.len() / 20 + 1);
    let mut prev: Option<u64> = None;
    let mut line_no = 1usize;
    while let Some(raw) = next_line(&mut rest) {
        line_no += 1;
        let line = trim_bytes(raw);
        if line.is_empty() || line[0] == b'#' {
            continue;
        }
        let comma = line
            .iter()
            .position(|&b| b == b',')
            .ok_or_else(|| format!("line {line_no}: expected `time,price`"))?;
        let (tb, pb) = (&line[..comma], &line[comma + 1..]);
        let micros = match parse_time_micros(tb) {
            Some(m) => m,
            None => {
                let t = parse_f64_fallback(tb)
                    .map_err(|e| format!("line {line_no}: bad time: {e}"))?;
                if !t.is_finite() || t < 0.0 {
                    return Err(format!("line {line_no}: time must be non-negative"));
                }
                (t * 1e6).round() as u64
            }
        };
        let price = match parse_price(pb) {
            Some(p) => p,
            None => parse_f64_fallback(pb)
                .map_err(|e| format!("line {line_no}: bad price: {e}"))?,
        };
        if !price.is_finite() {
            return Err(format!("line {line_no}: price must be finite"));
        }
        if let Some(p) = prev {
            if micros <= p {
                return Err(format!(
                    "line {line_no}: timestamps must be strictly increasing \
                     ({micros}us does not follow {p}us)"
                ));
            }
        }
        prev = Some(micros);
        points.push((SimTime::from_micros(micros), price));
    }
    metrics::add(points.len() as u64);
    Ok(PriceTrace::new(market, od, StepSeries::from_points(points)))
}

/// Splits the next line off `*rest`, advancing past the terminating `\n`
/// and stripping one trailing `\r`. Mirrors `str::lines`.
fn next_line<'a>(rest: &mut &'a [u8]) -> Option<&'a [u8]> {
    if rest.is_empty() {
        return None;
    }
    let (line, tail) = match rest.iter().position(|&b| b == b'\n') {
        Some(i) => (&rest[..i], &rest[i + 1..]),
        None => (*rest, &rest[rest.len()..]),
    };
    *rest = tail;
    Some(line.strip_suffix(b"\r").unwrap_or(line))
}

/// Trims the bytes `char::is_whitespace` would trim in ASCII (the old
/// parser called `str::trim` per line).
fn trim_bytes(mut s: &[u8]) -> &[u8] {
    fn is_space(b: u8) -> bool {
        b.is_ascii_whitespace() || b == 0x0b
    }
    while let [b, rest @ ..] = s {
        if !is_space(*b) {
            break;
        }
        s = rest;
    }
    while let [rest @ .., b] = s {
        if !is_space(*b) {
            break;
        }
        s = rest;
    }
    s
}

/// Accumulates an unsigned decimal of the form `digits[.digits]` into a
/// mantissa `m` and fractional-digit count `k` with value `m / 10^k`.
/// Returns `None` for any other shape (sign, exponent, double dot,
/// non-digit) or when more than 15 digits appear — the callers' exactness
/// arguments need `m < 2^53`, and 10^15 − 1 < 2^53.
fn parse_simple_decimal(s: &[u8]) -> Option<(u64, usize)> {
    let mut m = 0u64;
    let mut digits = 0usize;
    let mut frac: Option<usize> = None;
    for &b in s {
        match b {
            b'0'..=b'9' => {
                digits += 1;
                if digits > 15 {
                    return None;
                }
                m = m * 10 + u64::from(b - b'0');
                if let Some(f) = frac.as_mut() {
                    *f += 1;
                }
            }
            b'.' if frac.is_none() => frac = Some(0),
            _ => return None,
        }
    }
    if digits == 0 {
        return None;
    }
    Some((m, frac.unwrap_or(0)))
}

/// Fast path for the time column: exact integer microseconds for simple
/// decimals with ≤ 6 fractional digits.
///
/// Equality with the old `(f64::parse(s) * 1e6).round() as u64` path: the
/// decimal's exact value is m/10^k with k ≤ 6, so `micros = m·10^(6−k)`
/// is the exact microsecond count. The old path computes
/// `round(fl(fl(m/10^6) · 10^6))`; two roundings give a relative error
/// ≤ 2·2^−53, i.e. an absolute error < 0.26 for `micros < 2^50` — well
/// under the 0.5 where `round` could move off the exact integer. Values
/// at or past 2^50 µs (≈ 35 simulated years) take the fallback.
fn parse_time_micros(s: &[u8]) -> Option<u64> {
    const POW10: [u64; 7] = [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000];
    let (m, k) = parse_simple_decimal(s)?;
    if k > 6 {
        return None;
    }
    let micros = m.checked_mul(POW10[6 - k])?;
    if micros >= 1 << 50 {
        return None;
    }
    Some(micros)
}

/// Fast path for the price column: `m as f64 / 10^k` for simple decimals.
///
/// Bit-exactness with `f64::parse`: `parse_simple_decimal` guarantees
/// `m < 2^53` and `k ≤ 15`, so both `m` and `10^k` convert to `f64`
/// exactly, and one IEEE division yields the correctly-rounded value of
/// the exact quotient `m / 10^k` — the same correctly-rounded result the
/// standard parser is specified to produce.
fn parse_price(s: &[u8]) -> Option<f64> {
    #[rustfmt::skip]
    const POW10: [f64; 16] = [
        1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7,
        1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15,
    ];
    let (m, k) = parse_simple_decimal(s)?;
    Some(m as f64 / POW10[k])
}

/// `f64::parse` on a byte slice, for the forms the fast paths decline.
fn parse_f64_fallback(bytes: &[u8]) -> Result<f64, String> {
    match std::str::from_utf8(bytes) {
        Ok(s) => s.parse::<f64>().map_err(|e| e.to_string()),
        Err(_) => Err("invalid float literal".to_string()),
    }
}

// ---------------------------------------------------------------------------
// Trace cursor
// ---------------------------------------------------------------------------

/// How many points a cursor walks forward before giving up and binary
/// searching the remainder. Price lookups between consecutive simulation
/// events rarely skip more than a handful of change points; a long jump
/// (fast-forward over an idle stretch) pays one `O(log n)` seek instead
/// of an unbounded walk.
const CURSOR_WALK_LIMIT: usize = 32;

/// An amortized-O(1) cursor over a [`PriceTrace`]'s change points.
///
/// The cursor caches the insertion index of the last queried instant and
/// re-derives each answer from it: queries at non-decreasing times walk
/// forward (the simulation's common case — billing sweeps, price-change
/// re-arms, and placement scans all move with the clock), and a query
/// behind the cached point re-seeks with a bounded binary search.
///
/// The cached index is a pure accelerator: every query returns exactly
/// what [`StepSeries::value_at`] / [`StepSeries::next_change_after`]
/// return for the same `(series, t)`, whatever the hint holds — so
/// cursor-backed lookups are deterministic even when a cursor is shared
/// across ingestion threads (the hint is a relaxed atomic; a stale or
/// torn-off-by-a-race value only costs a re-seek, never changes a
/// result).
#[derive(Debug, Default)]
pub struct TraceCursor {
    hint: AtomicUsize,
}

impl Clone for TraceCursor {
    fn clone(&self) -> Self {
        TraceCursor {
            hint: AtomicUsize::new(self.hint.load(Ordering::Relaxed)),
        }
    }
}

impl TraceCursor {
    /// Creates a cursor positioned before the first point.
    pub fn new() -> Self {
        TraceCursor::default()
    }

    /// Returns `partition_point(|(pt, _)| *pt <= t)`, amortized O(1) on
    /// monotone query streams.
    fn seek(&self, points: &[(SimTime, f64)], t: SimTime) -> usize {
        let n = points.len();
        let mut j = self.hint.load(Ordering::Relaxed).min(n);
        if j > 0 && points[j - 1].0 > t {
            // Time regressed behind the hint: binary re-seek in the prefix.
            j = points[..j].partition_point(|(pt, _)| *pt <= t);
        } else {
            let mut steps = 0;
            while j < n && points[j].0 <= t {
                j += 1;
                steps += 1;
                if steps >= CURSOR_WALK_LIMIT {
                    // Long jump: finish with a binary search of the tail.
                    j += points[j..].partition_point(|(pt, _)| *pt <= t);
                    break;
                }
            }
        }
        self.hint.store(j, Ordering::Relaxed);
        j
    }

    /// [`PriceTrace::price_at`] through the cursor: the spot price at `t`,
    /// or `None` before the trace starts.
    pub fn price_at(&self, trace: &PriceTrace, t: SimTime) -> Option<f64> {
        let points = trace.prices.points();
        let j = self.seek(points, t);
        if j == 0 {
            None
        } else {
            Some(points[j - 1].1)
        }
    }

    /// [`StepSeries::next_change_after`] through the cursor: the first
    /// change point strictly after `t`.
    pub fn next_change_after(&self, trace: &PriceTrace, t: SimTime) -> Option<(SimTime, f64)> {
        let points = trace.prices.points();
        let j = self.seek(points, t);
        points.get(j).copied()
    }
}

// ---------------------------------------------------------------------------
// Trace library
// ---------------------------------------------------------------------------

/// One index entry of an on-disk archive: everything a reader can know
/// about a market without decoding its block.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketSummary {
    /// The market.
    pub market: MarketId,
    /// Number of price change points in the block.
    pub points: usize,
    /// First and last change-point instants, or `None` for an empty trace.
    pub span: Option<(SimTime, SimTime)>,
    /// The fixed on-demand $/hr price.
    pub on_demand_price: f64,
    /// Byte offset of the market's columnar block within the archive.
    pub offset: u64,
}

/// An ordered collection of price traces with unique markets, loadable
/// from and storable to the `.stl` columnar format.
#[derive(Debug, Clone)]
pub struct TraceLibrary {
    traces: Vec<PriceTrace>,
    by_market: BTreeMap<MarketId, usize>,
}

impl TraceLibrary {
    /// Builds a library from traces, preserving their order.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first duplicated market.
    pub fn new(traces: Vec<PriceTrace>) -> Result<TraceLibrary, String> {
        let mut by_market = BTreeMap::new();
        for (i, t) in traces.iter().enumerate() {
            if by_market.insert(t.market.clone(), i).is_some() {
                return Err(format!("duplicate market {}", t.market));
            }
        }
        Ok(TraceLibrary { traces, by_market })
    }

    /// The traces, in library order.
    pub fn traces(&self) -> &[PriceTrace] {
        &self.traces
    }

    /// Consumes the library, yielding its traces in order.
    pub fn into_traces(self) -> Vec<PriceTrace> {
        self.traces
    }

    /// Looks up one market's trace.
    pub fn get(&self, market: &MarketId) -> Option<&PriceTrace> {
        self.by_market.get(market).map(|&i| &self.traces[i])
    }

    /// Number of markets.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the library holds no markets.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total change points across all markets.
    pub fn total_points(&self) -> usize {
        self.traces.iter().map(|t| t.prices.len()).sum()
    }

    /// Parses every `*.csv` file in `dir` (sorted by file name for
    /// deterministic library order), fanning the per-file scan out via
    /// [`parallel_map`].
    ///
    /// # Errors
    ///
    /// Returns the first I/O, parse, or duplicate-market error, prefixed
    /// with the offending path.
    pub fn ingest_csv_dir(dir: &Path) -> Result<TraceLibrary, String> {
        let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let mut files: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let path = entry.map_err(|e| format!("{}: {e}", dir.display()))?.path();
            if path.extension().is_some_and(|x| x == "csv") {
                files.push(path);
            }
        }
        files.sort();
        let parsed = parallel_map(files, |_, path| {
            std::fs::read(&path)
                .map_err(|e| e.to_string())
                .and_then(|bytes| parse_csv_bytes(&bytes))
                .map_err(|e| format!("{}: {e}", path.display()))
        });
        let mut traces = Vec::with_capacity(parsed.len());
        for r in parsed {
            traces.push(r?);
        }
        TraceLibrary::new(traces)
    }

    /// Serializes the library to `.stl` bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf =
            Vec::with_capacity(64 + 64 * self.traces.len() + 12 * self.total_points());
        buf.extend_from_slice(STL_MAGIC);
        put_u64(&mut buf, self.traces.len() as u64);
        let mut offsets = Vec::with_capacity(self.traces.len());
        for trace in &self.traces {
            offsets.push(buf.len() as u64);
            write_block(&mut buf, trace);
        }
        let index_offset = buf.len() as u64;
        for (trace, &offset) in self.traces.iter().zip(&offsets) {
            write_index_entry(&mut buf, trace, offset);
        }
        buf.extend_from_slice(&index_offset.to_le_bytes());
        let digest = payload_digest(&buf);
        buf.extend_from_slice(&digest.to_le_bytes());
        buf.extend_from_slice(STL_TAIL);
        buf
    }

    /// Deserializes a library from `.stl` bytes, verifying the integrity
    /// digest and decoding the per-market blocks in parallel.
    ///
    /// # Errors
    ///
    /// Any structural defect — bad magic, truncation, digest mismatch,
    /// malformed varints, non-increasing timestamps, non-finite prices —
    /// is an error; this function never panics on hostile input.
    pub fn from_bytes(bytes: &[u8]) -> Result<TraceLibrary, String> {
        let (entries, index_offset) = parse_index(bytes)?;
        let extents = block_extents(&entries, index_offset)?;
        let jobs: Vec<usize> = (0..entries.len()).collect();
        let decoded = parallel_map(jobs, |_, i| {
            let (start, end) = extents[i];
            decode_block(&bytes[start..end], &entries[i])
                .map_err(|e| format!("market {}: {e}", entries[i].market))
        });
        let mut traces = Vec::with_capacity(decoded.len());
        for r in decoded {
            traces.push(r?);
        }
        TraceLibrary::new(traces)
    }

    /// Writes the library to `path` atomically (tmp sibling + rename), so
    /// a crash mid-write can never leave a torn archive under the final
    /// name.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, prefixed with the path.
    pub fn write_stl(&self, path: &Path) -> Result<(), String> {
        let bytes = self.to_bytes();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &bytes).map_err(|e| format!("{}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Reads a library from a `.stl` file.
    ///
    /// With more than one configured worker the whole file is buffered so
    /// blocks can decode in parallel, as in [`TraceLibrary::from_bytes`].
    /// With a single worker the archive is instead streamed block by
    /// block through a small reused buffer: each block is digested and
    /// decoded while its bytes are still cache-hot, and the
    /// whole-archive allocation (plus its page faults) disappears — on
    /// multi-hundred-megabyte archives that is the difference between a
    /// DRAM-bound and a cache-resident decode. Both paths accept and
    /// reject exactly the same archives.
    ///
    /// # Errors
    ///
    /// I/O errors (path-prefixed) and every defect [`TraceLibrary::from_bytes`]
    /// rejects.
    pub fn read_stl(path: &Path) -> Result<TraceLibrary, String> {
        if configured_threads() > 1 {
            let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
            return TraceLibrary::from_bytes(&bytes)
                .map_err(|e| format!("{}: {e}", path.display()));
        }
        read_stl_streaming(path).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// The streaming (single-worker) load path behind [`TraceLibrary::read_stl`].
///
/// Order of operations: head magic + market count, footer (tail magic,
/// stored digest, index offset), then the index region — small reads
/// that establish the block extents. The payload is then swept
/// sequentially from offset zero: the header span and each block are
/// read into a reused buffer, absorbed into the incremental digest, and
/// decoded in place; the index bytes (already in memory) are absorbed
/// last, completing the digest in exact payload order. A digest mismatch
/// takes precedence over any block decode error, matching the buffered
/// path, which verifies the digest before decoding anything.
fn read_stl_streaming(path: &Path) -> Result<TraceLibrary, String> {
    use std::io::{Read, Seek, SeekFrom};

    let mut file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    let len = file.metadata().map_err(|e| e.to_string())?.len() as usize;
    if len < STL_MAGIC.len() + 1 + FOOTER_LEN {
        return Err(format!("truncated archive ({len} bytes)"));
    }
    // Head: the magic plus the market-count varint fit in 18 bytes, and
    // `len` is already known to be ≥ 33. These bytes are re-read (and
    // digested) by the sequential sweep below.
    let mut head = [0u8; 18];
    file.read_exact(&mut head).map_err(|e| e.to_string())?;
    if &head[..STL_MAGIC.len()] != STL_MAGIC {
        return Err("not a .stl trace library (bad magic)".to_string());
    }
    let mut pos = STL_MAGIC.len();
    let count = get_u64(&head, &mut pos)? as usize;
    if count > len {
        return Err(format!("implausible market count {count}"));
    }
    let header_end = pos;

    let mut footer = [0u8; FOOTER_LEN];
    file.seek(SeekFrom::Start((len - FOOTER_LEN) as u64))
        .map_err(|e| e.to_string())?;
    file.read_exact(&mut footer).map_err(|e| e.to_string())?;
    if &footer[FOOTER_LEN - STL_TAIL.len()..] != STL_TAIL {
        return Err("truncated or corrupted archive (bad tail magic)".to_string());
    }
    let index_offset = u64::from_le_bytes(footer[..8].try_into().expect("8 bytes"));
    let stored = u64::from_le_bytes(footer[8..16].try_into().expect("8 bytes"));
    let index_start = index_offset as usize;
    if index_offset < header_end as u64 || index_start > len - FOOTER_LEN {
        return Err(format!("index offset {index_offset} out of bounds"));
    }

    // The tail region: index entries plus the footer already read. Block
    // extents come from here; its payload bytes are digested last.
    let mut tail = vec![0u8; len - index_start];
    file.seek(SeekFrom::Start(index_offset))
        .map_err(|e| e.to_string())?;
    file.read_exact(&mut tail).map_err(|e| e.to_string())?;
    let entries = parse_entries(&tail, 0, tail.len() - FOOTER_LEN, count, index_offset)?;
    let extents = block_extents(&entries, index_offset)?;

    // Sequential sweep: header span, then each block (extents are
    // contiguous by construction — each block ends where the next
    // begins, the last at the index).
    file.seek(SeekFrom::Start(0)).map_err(|e| e.to_string())?;
    let mut digest = PayloadDigest::new();
    let first_block = extents.first().map_or(index_start, |&(s, _)| s);
    let max_seg = extents
        .iter()
        .map(|&(s, e)| e - s)
        .max()
        .unwrap_or(0)
        .max(first_block);
    let mut buf = vec![0u8; max_seg];
    file.read_exact(&mut buf[..first_block])
        .map_err(|e| e.to_string())?;
    digest.absorb(&buf[..first_block]);
    let mut first_err: Option<String> = None;
    let mut traces = Vec::with_capacity(entries.len());
    for (i, &(start, end)) in extents.iter().enumerate() {
        let n = end - start;
        file.read_exact(&mut buf[..n]).map_err(|e| e.to_string())?;
        digest.absorb(&buf[..n]);
        if first_err.is_none() {
            match decode_block(&buf[..n], &entries[i]) {
                Ok(t) => traces.push(t),
                Err(e) => first_err = Some(format!("market {}: {e}", entries[i].market)),
            }
        }
    }
    digest.absorb(&tail[..tail.len() - 16]);
    if digest.finish() != stored {
        return Err("archive digest mismatch (corrupted contents)".to_string());
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    TraceLibrary::new(traces)
}

/// Reads only the index of a `.stl` file — market names, point counts,
/// time spans, on-demand prices, block offsets — without decoding any
/// block. The integrity digest is still verified.
///
/// # Errors
///
/// I/O errors and structural defects, as for [`TraceLibrary::read_stl`].
pub fn read_index(path: &Path) -> Result<Vec<MarketSummary>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let (entries, _) = parse_index(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(entries)
}

/// Digests the archive payload (everything before the digest field) as
/// little-endian `u64` words over four interleaved [`Digest64`] lanes,
/// folded into one digest at the end (tail bytes feed the fold directly).
///
/// Two throughput levers over naive byte feeding: word absorption runs
/// one FNV step per eight bytes instead of eight, and the four lanes
/// break the absorb step's serial xor-multiply dependency chain so the
/// multiplies pipeline. Detection strength is preserved: every absorb
/// step is bijective in its input word, and each lane's finished value is
/// itself absorbed bijectively, so any single-byte flip anywhere in the
/// payload still always changes the digest.
fn payload_digest(payload: &[u8]) -> u64 {
    let mut digest = PayloadDigest::new();
    digest.absorb(payload);
    digest.finish()
}

/// Incremental form of [`payload_digest`]: feeding the payload through
/// `absorb` in arbitrary-sized pieces produces exactly the one-shot
/// digest, so the streaming loader can verify an archive it never holds
/// in memory at once. Partial 32-byte groups buffer in `pending` until
/// complete; `finish` folds the lanes and the final partial group the
/// same way the one-shot path folds its remainder.
struct PayloadDigest {
    lanes: [Digest64; 4],
    pending: [u8; 32],
    pending_len: usize,
}

impl PayloadDigest {
    fn new() -> Self {
        PayloadDigest {
            lanes: [
                Digest64::new(),
                Digest64::new(),
                Digest64::new(),
                Digest64::new(),
            ],
            pending: [0u8; 32],
            pending_len: 0,
        }
    }

    fn absorb_group(&mut self, g: &[u8]) {
        for (j, lane) in self.lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(g[j * 8..j * 8 + 8].try_into().expect("8-byte word"));
            lane.absorb_u64(w);
        }
    }

    fn absorb(&mut self, mut bytes: &[u8]) {
        if self.pending_len > 0 {
            let take = (32 - self.pending_len).min(bytes.len());
            self.pending[self.pending_len..self.pending_len + take]
                .copy_from_slice(&bytes[..take]);
            self.pending_len += take;
            bytes = &bytes[take..];
            if self.pending_len < 32 {
                return;
            }
            let group = self.pending;
            self.absorb_group(&group);
            self.pending_len = 0;
        }
        let mut groups = bytes.chunks_exact(32);
        for g in &mut groups {
            self.absorb_group(g);
        }
        let rem = groups.remainder();
        self.pending[..rem.len()].copy_from_slice(rem);
        self.pending_len = rem.len();
    }

    fn finish(&self) -> u64 {
        let mut digest = Digest64::new();
        for lane in &self.lanes {
            digest.absorb_u64(lane.finish());
        }
        let mut words = self.pending[..self.pending_len].chunks_exact(8);
        for w in &mut words {
            digest.absorb_u64(u64::from_le_bytes(w.try_into().expect("8-byte word")));
        }
        digest.write_bytes(words.remainder());
        digest.finish()
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_str<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a str, String> {
    let len = get_u64(bytes, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| format!("truncated string at byte {}", *pos))?;
    let s = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| format!("non-UTF-8 string at byte {}", *pos))?;
    *pos = end;
    Ok(s)
}

/// Timestamp deltas as varints (any gap width).
const TIME_CODEC_VARINT: u8 = 0;
/// Timestamp deltas as fixed u32s (every gap < ~71.6 minutes).
const TIME_CODEC_FIXED_U32: u8 = 1;

fn write_block(buf: &mut Vec<u8>, trace: &PriceTrace) {
    put_str(buf, trace.market.type_name.as_str());
    put_str(buf, trace.market.zone.as_str());
    buf.extend_from_slice(&trace.on_demand_price.to_bits().to_le_bytes());
    let points = trace.prices.points();
    put_u64(buf, points.len() as u64);
    // The codec choice is a pure function of the points, so re-encoding
    // a decoded library reproduces the archive byte for byte.
    let fixed = points
        .windows(2)
        .all(|w| w[1].0.as_micros() - w[0].0.as_micros() <= u32::MAX as u64);
    let codec = if fixed {
        TIME_CODEC_FIXED_U32
    } else {
        TIME_CODEC_VARINT
    };
    buf.push(codec);
    let mut prev = 0u64;
    for (i, (t, _)) in points.iter().enumerate() {
        let m = t.as_micros();
        if i == 0 {
            // The first timestamp is absolute and can exceed u32 range,
            // so it is a varint under either codec.
            put_u64(buf, m);
        } else if codec == TIME_CODEC_FIXED_U32 {
            buf.extend_from_slice(&((m - prev) as u32).to_le_bytes());
        } else {
            put_u64(buf, m - prev);
        }
        prev = m;
    }
    for (_, v) in points {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn write_index_entry(buf: &mut Vec<u8>, trace: &PriceTrace, offset: u64) {
    put_str(buf, trace.market.type_name.as_str());
    put_str(buf, trace.market.zone.as_str());
    put_u64(buf, offset);
    put_u64(buf, trace.prices.len() as u64);
    let start = trace.prices.start().map_or(0, SimTime::as_micros);
    let end = trace.prices.end().map_or(0, SimTime::as_micros);
    put_u64(buf, start);
    put_u64(buf, end);
    buf.extend_from_slice(&trace.on_demand_price.to_bits().to_le_bytes());
}

fn get_f64_bits(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| format!("truncated f64 at byte {}", *pos))?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(f64::from_bits(u64::from_le_bytes(raw)))
}

/// Verifies the envelope (magics, digest) and parses the index. Returns
/// the entries plus the index offset, which bounds the block region.
fn parse_index(bytes: &[u8]) -> Result<(Vec<MarketSummary>, u64), String> {
    let len = bytes.len();
    if len < STL_MAGIC.len() + 1 + FOOTER_LEN {
        return Err(format!("truncated archive ({len} bytes)"));
    }
    if &bytes[..STL_MAGIC.len()] != STL_MAGIC {
        return Err("not a .stl trace library (bad magic)".to_string());
    }
    if &bytes[len - STL_TAIL.len()..] != STL_TAIL {
        return Err("truncated or corrupted archive (bad tail magic)".to_string());
    }
    let stored = u64::from_le_bytes(bytes[len - 16..len - 8].try_into().expect("8 bytes"));
    if payload_digest(&bytes[..len - 16]) != stored {
        return Err("archive digest mismatch (corrupted contents)".to_string());
    }
    let index_offset =
        u64::from_le_bytes(bytes[len - 24..len - 16].try_into().expect("8 bytes"));
    let mut pos = STL_MAGIC.len();
    let count = get_u64(bytes, &mut pos)? as usize;
    // Every market contributes ≥ 13 index bytes; reject absurd counts
    // before trusting them for an allocation.
    if count > len {
        return Err(format!("implausible market count {count}"));
    }
    let index_start = index_offset as usize;
    if index_offset < pos as u64 || index_start > len - FOOTER_LEN {
        return Err(format!("index offset {index_offset} out of bounds"));
    }
    let entries = parse_entries(bytes, index_start, len - FOOTER_LEN, count, index_offset)?;
    Ok((entries, index_offset))
}

/// Parses `count` index entries from `bytes[pos..end]`, enforcing the
/// per-entry invariants (strictly increasing block offsets below the
/// index, non-inverted time spans) and that the entries fill the region
/// exactly. `index_offset` is the absolute offset the block offsets must
/// stay below; `bytes` may be the whole archive or just its tail region,
/// so positions in error messages are relative to it.
fn parse_entries(
    bytes: &[u8],
    mut pos: usize,
    end: usize,
    count: usize,
    index_offset: u64,
) -> Result<Vec<MarketSummary>, String> {
    let mut entries = Vec::with_capacity(count);
    let mut prev_offset = 0u64;
    for _ in 0..count {
        let ty = get_str(bytes, &mut pos)?.to_string();
        let zone = get_str(bytes, &mut pos)?.to_string();
        let offset = get_u64(bytes, &mut pos)?;
        let points = get_u64(bytes, &mut pos)? as usize;
        let start = get_u64(bytes, &mut pos)?;
        let span_end = get_u64(bytes, &mut pos)?;
        let od = get_f64_bits(bytes, &mut pos)?;
        if offset <= prev_offset {
            return Err(format!("index offsets not increasing at {ty}@{zone}"));
        }
        if offset >= index_offset {
            return Err(format!("block offset {offset} overlaps index"));
        }
        prev_offset = offset;
        let span = if points == 0 {
            None
        } else if start <= span_end {
            Some((SimTime::from_micros(start), SimTime::from_micros(span_end)))
        } else {
            return Err(format!("inverted time span at {ty}@{zone}"));
        };
        entries.push(MarketSummary {
            market: MarketId::new(ty, zone),
            points,
            span,
            on_demand_price: od,
            offset,
        });
    }
    if pos != end {
        return Err("index has trailing bytes".to_string());
    }
    Ok(entries)
}

/// Block extents from the index: each block ends where the next begins;
/// the last ends at the index.
fn block_extents(
    entries: &[MarketSummary],
    index_offset: u64,
) -> Result<Vec<(usize, usize)>, String> {
    let mut extents = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        let start = e.offset;
        let end = entries
            .get(i + 1)
            .map_or(index_offset, |next| next.offset);
        if start < (STL_MAGIC.len() + 1) as u64 || start >= end || end > index_offset {
            return Err(format!("market {}: invalid block extent", e.market));
        }
        extents.push((start as usize, end as usize));
    }
    Ok(extents)
}

/// Decodes one market's columnar block, cross-checking it against its
/// index entry.
fn decode_block(block: &[u8], entry: &MarketSummary) -> Result<PriceTrace, String> {
    let mut pos = 0usize;
    let ty = get_str(block, &mut pos)?;
    let zone = get_str(block, &mut pos)?;
    if ty != entry.market.type_name.as_str() || zone != entry.market.zone.as_str() {
        return Err(format!("block names {ty}@{zone}, index disagrees"));
    }
    let od = get_f64_bits(block, &mut pos)?;
    if od.to_bits() != entry.on_demand_price.to_bits() {
        return Err("block on-demand price disagrees with index".to_string());
    }
    if !(od.is_finite() && od > 0.0) {
        return Err(format!("on-demand price must be positive, got {od}"));
    }
    let count = get_u64(block, &mut pos)? as usize;
    if count != entry.points {
        return Err(format!(
            "block holds {count} points, index says {}",
            entry.points
        ));
    }
    let codec = *block
        .get(pos)
        .ok_or_else(|| "truncated block (missing timestamp codec)".to_string())?;
    pos += 1;
    if codec > TIME_CODEC_FIXED_U32 {
        return Err(format!("unknown timestamp codec {codec}"));
    }
    // Each point needs ≥ 1 timestamp byte + 8 price bytes under either
    // codec (fixed-u32: 1 varint byte + 4(count−1) ≥ count for any
    // count ≥ 1); bound the allocation before trusting the count.
    let remaining = block.len() - pos;
    let price_bytes = count
        .checked_mul(8)
        .ok_or_else(|| format!("implausible point count {count}"))?;
    if price_bytes
        .checked_add(count)
        .map_or(true, |need| need > remaining)
    {
        return Err(format!("implausible point count {count}"));
    }
    // The price column is fixed-width, so it sits at a known tail offset;
    // the varint timestamp column must end exactly where it starts.
    // Slicing the timestamp region also guarantees a corrupt varint can
    // never consume price bytes. Decoding both columns in one pass writes
    // each point once — on multi-million-point blocks a separate fill
    // pass would re-walk a vector far larger than cache.
    let times_end = block.len() - price_bytes;
    let times = &block[..times_end];
    let data_start = pos;
    let mut prices = block[times_end..].chunks_exact(8);
    let mut points: Vec<(SimTime, f64)> = Vec::with_capacity(count);
    // Validation outcomes accumulate branchlessly and are checked once
    // after the loop; the cold rescan below reconstructs the precise
    // error. (A defect here implies an encoder bug or a digest collision
    // — the payload digest was already verified — so the hot loop should
    // pay nothing for it.)
    let mut defect = false;
    let mut zero_delta = false;
    let mut overflowed = false;
    let mut bad_price = false;
    let mut t = 0u64;
    if codec == TIME_CODEC_FIXED_U32 {
        // Fixed-width deltas: the whole timestamp column is the first
        // absolute value (varint) plus exactly 4(count−1) delta bytes, so
        // the hot loop is a u32 load, an add, and a price copy per point.
        if count > 0 {
            match get_u64(times, &mut pos) {
                Ok(first) => {
                    t = first;
                    let raw = prices.next().expect("price column sized to count");
                    let bits = u64::from_le_bytes(raw.try_into().expect("8-byte chunk"));
                    bad_price |= (bits >> 52) & 0x7ff == 0x7ff;
                    points.push((SimTime::from_micros(t), f64::from_bits(bits)));
                    if times_end - pos == (count - 1) * 4 {
                        for raw4 in times[pos..].chunks_exact(4) {
                            let d =
                                u32::from_le_bytes(raw4.try_into().expect("4-byte delta")) as u64;
                            zero_delta |= d == 0;
                            let (next, over) = t.overflowing_add(d);
                            overflowed |= over;
                            t = next;
                            let raw = prices.next().expect("price column sized to count");
                            let bits =
                                u64::from_le_bytes(raw.try_into().expect("8-byte chunk"));
                            bad_price |= (bits >> 52) & 0x7ff == 0x7ff;
                            points.push((SimTime::from_micros(t), f64::from_bits(bits)));
                        }
                        pos = times_end;
                    } else {
                        defect = true;
                    }
                }
                Err(_) => defect = true,
            }
        }
    } else {
        for i in 0..count {
            // Branchless varint fast path: one unaligned 8-byte window,
            // the encoding length from the first clear continuation bit,
            // and an unconditional 7-bit-group fold masked to that
            // length. Delta sizes vary point to point, so a per-byte (or
            // per-length-branch) decoder mispredicts constantly; this
            // path's only branch — "did the varint end within the
            // window?" — is always taken for the 1..=8-byte encodings
            // every real delta uses.
            let v = if times_end - pos >= 8 {
                let w =
                    u64::from_le_bytes(times[pos..pos + 8].try_into().expect("8-byte window"));
                let terminators = !w & 0x8080_8080_8080_8080;
                if terminators != 0 {
                    let nbytes = (terminators.trailing_zeros() as usize) / 8 + 1;
                    pos += nbytes;
                    // Strip continuation bits, zero the bytes past the
                    // encoding, then close the 1-bit gaps between 7-bit
                    // groups in three log-step merges (14-, 28-, then
                    // 56-bit halves) — fewer ops than an 8-term fold.
                    let w = w & 0x7f7f_7f7f_7f7f_7f7f & (u64::MAX >> (64 - 8 * nbytes));
                    let w = (w & 0x007f_007f_007f_007f) | ((w & 0x7f00_7f00_7f00_7f00) >> 1);
                    let w = (w & 0x0000_3fff_0000_3fff) | ((w & 0x3fff_0000_3fff_0000) >> 2);
                    (w & 0x0000_0000_0fff_ffff) | ((w & 0x0fff_ffff_0000_0000) >> 4)
                } else {
                    // 9- and 10-byte encodings: the strict general
                    // decoder (which also enforces the 64-bit overflow
                    // rule).
                    match get_u64(times, &mut pos) {
                        Ok(v) => v,
                        Err(_) => {
                            defect = true;
                            break;
                        }
                    }
                }
            } else {
                match get_u64(times, &mut pos) {
                    Ok(v) => v,
                    Err(_) => {
                        defect = true;
                        break;
                    }
                }
            };
            if i == 0 {
                t = v;
            } else {
                zero_delta |= v == 0;
                let (next, over) = t.overflowing_add(v);
                overflowed |= over;
                t = next;
            }
            let raw = prices.next().expect("price column sized to count");
            let bits = u64::from_le_bytes(raw.try_into().expect("8-byte chunk"));
            // `!is_finite()` without the float compare: exponent all-ones.
            bad_price |= (bits >> 52) & 0x7ff == 0x7ff;
            points.push((SimTime::from_micros(t), f64::from_bits(bits)));
        }
    }
    if defect || zero_delta || overflowed || bad_price || pos != times_end {
        return Err(block_defect(codec, times, data_start, count, &block[times_end..]));
    }
    match (entry.span, points.first().zip(points.last())) {
        (None, None) => {}
        (Some((s, e)), Some((first, last))) if s == first.0 && e == last.0 => {}
        _ => return Err("block time span disagrees with index".to_string()),
    }
    metrics::add(count as u64);
    // The nonzero deltas above prove strictly-increasing times and every
    // price was finiteness-checked, so the trusted constructor's skipped
    // validation passes cannot hide a violation.
    Ok(PriceTrace::new(
        entry.market.clone(),
        od,
        StepSeries::from_points_trusted(points),
    ))
}

/// Reconstructs the precise error for a block the hot decode loop
/// flagged as defective, by re-walking the columns with the strict
/// decoder and the original one-check-per-point order. Cold: it only
/// runs on input that already failed, so the hot loop stays branch-lean.
#[cold]
#[inline(never)]
fn block_defect(codec: u8, times: &[u8], mut pos: usize, count: usize, price_tail: &[u8]) -> String {
    let mut t = 0u64;
    for i in 0..count {
        let v = if i == 0 || codec == TIME_CODEC_VARINT {
            match get_u64(times, &mut pos) {
                Ok(v) => v,
                Err(e) => return e,
            }
        } else {
            let Some(raw) = times.get(pos..pos + 4) else {
                return format!("truncated timestamp delta at point {i}");
            };
            pos += 4;
            u64::from(u32::from_le_bytes(raw.try_into().expect("4-byte delta")))
        };
        if i == 0 {
            t = v;
        } else {
            if v == 0 {
                return format!("zero timestamp delta at point {i}");
            }
            match t.checked_add(v) {
                Some(next) => t = next,
                None => return format!("timestamp overflow at point {i}"),
            }
        }
        let raw = &price_tail[i * 8..i * 8 + 8];
        let p = f64::from_bits(u64::from_le_bytes(raw.try_into().expect("8-byte chunk")));
        if !p.is_finite() {
            return format!("non-finite price {p}");
        }
    }
    if pos != times.len() {
        "block has trailing bytes".to_string()
    } else {
        // Unreachable unless the fast and strict walks disagree.
        "malformed block".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotcheck_simcore::rng::SimRng;

    fn sample_trace(market: &str, n: usize, seed: u64) -> PriceTrace {
        let mut rng = SimRng::seed(seed);
        let mut t = 0u64;
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            t += 1 + rng.next_u64() % 600_000_000;
            let p = (rng.next_u64() % 10_000) as f64 / 1e4 + 0.001;
            points.push((SimTime::from_micros(t), p));
        }
        let (ty, zone) = market.split_once('@').unwrap();
        PriceTrace::new(
            MarketId::new(ty, zone),
            0.07,
            StepSeries::from_points(points),
        )
    }

    fn sample_library() -> TraceLibrary {
        TraceLibrary::new(vec![
            sample_trace("m3.medium@us-east-1a", 500, 1),
            sample_trace("m3.large@us-east-1b", 0, 2),
            sample_trace("m3.xlarge@eu-west-1a", 137, 3),
        ])
        .unwrap()
    }

    #[test]
    fn scanner_matches_reference_on_roundtrip_csv() {
        let t = sample_trace("m3.medium@us-east-1a", 1000, 9);
        let parsed = parse_csv_bytes(t.to_csv().as_bytes()).unwrap();
        assert_eq!(parsed.market, t.market);
        assert_eq!(parsed.on_demand_price.to_bits(), t.on_demand_price.to_bits());
        assert_eq!(parsed.prices.points(), t.prices.points());
    }

    #[test]
    fn scanner_fallback_forms_match_f64_parse() {
        // Exponents, long mantissas, and padded forms all decline the fast
        // path; the result must still equal what `f64::parse` produces.
        let cases = [
            "3e-2",
            "2.5E1",
            "0.30000000000000004",
            "1234567890123456.5",
            "0.000000125",
            "00012.5000",
            "17179869184.000001",
        ];
        let mut csv = String::from("# market=a@b od=0.07\n");
        for (i, c) in cases.iter().enumerate() {
            csv.push_str(&format!("{i}{sep}{c}\n", sep = ","));
        }
        let parsed = parse_csv_bytes(csv.as_bytes()).unwrap();
        for (i, c) in cases.iter().enumerate() {
            let want: f64 = c.parse().unwrap();
            let got = parsed.prices.points()[i].1;
            assert_eq!(got.to_bits(), want.to_bits(), "case {c}");
        }
    }

    #[test]
    fn scanner_time_fast_path_matches_float_path() {
        // Times with ≤ 6 fractional digits must hit the exact integer fast
        // path and agree with the old float computation.
        let times = ["0", "0.000001", "1.5", "86400", "999999.999999", "15724800.25"];
        let mut csv = String::from("# market=a@b od=0.07\n");
        for t in times {
            csv.push_str(t);
            csv.push_str(",0.5\n");
        }
        let parsed = parse_csv_bytes(csv.as_bytes()).unwrap();
        for (i, s) in times.iter().enumerate() {
            let f: f64 = s.parse().unwrap();
            let want = (f * 1e6).round() as u64;
            assert_eq!(parsed.prices.points()[i].0.as_micros(), want, "time {s}");
        }
    }

    #[test]
    fn library_roundtrips_bit_exact() {
        let lib = sample_library();
        let bytes = lib.to_bytes();
        let back = TraceLibrary::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), lib.len());
        for (a, b) in lib.traces().iter().zip(back.traces()) {
            assert_eq!(a.market, b.market);
            assert_eq!(a.on_demand_price.to_bits(), b.on_demand_price.to_bits());
            assert_eq!(a.prices.points(), b.prices.points());
        }
    }

    #[test]
    fn timestamp_codec_boundary_roundtrips() {
        // Deltas of exactly u32::MAX keep the fixed-u32 codec; one delta
        // a single microsecond past it pushes the whole block to varint.
        // Both encodings round-trip bit-exact and re-encode identically.
        let mut encoded = Vec::new();
        for bump in [0u64, 1] {
            let mut t = 5u64;
            let mut points = vec![(SimTime::from_micros(t), 0.25)];
            for i in 0..10u64 {
                t += u32::MAX as u64 + if i == 4 { bump } else { 0 };
                points.push((SimTime::from_micros(t), 0.5));
            }
            let lib = TraceLibrary::new(vec![PriceTrace::new(
                MarketId::new("m3.medium", "us-east-1a"),
                0.07,
                StepSeries::from_points(points),
            )])
            .unwrap();
            let bytes = lib.to_bytes();
            let back = TraceLibrary::from_bytes(&bytes).unwrap();
            assert_eq!(
                back.traces()[0].prices.points(),
                lib.traces()[0].prices.points(),
                "bump {bump}"
            );
            assert_eq!(back.to_bytes(), bytes, "bump {bump}: re-encode differs");
            encoded.push(bytes);
        }
        // Same point count, different codecs: fixed spends 4 bytes per
        // delta at this magnitude, varint spends 5.
        assert!(encoded[0].len() < encoded[1].len());
    }

    #[test]
    fn index_reads_without_decoding() {
        let lib = sample_library();
        let dir = std::env::temp_dir().join(format!("stl-index-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lib.stl");
        lib.write_stl(&path).unwrap();
        let summaries = read_index(&path).unwrap();
        assert_eq!(summaries.len(), 3);
        for (s, t) in summaries.iter().zip(lib.traces()) {
            assert_eq!(s.market, t.market);
            assert_eq!(s.points, t.prices.len());
            assert_eq!(
                s.span,
                t.prices.start().zip(t.prices.end()),
                "span for {}",
                s.market
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_and_corruption_are_errors() {
        let bytes = sample_library().to_bytes();
        for cut in [0, 1, 7, 8, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(TraceLibrary::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Any single-byte flip lands in the digested region, the digest
        // field, or the tail magic — all must reject.
        for i in [0, 8, 40, bytes.len() / 2, bytes.len() - 20, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            assert!(TraceLibrary::from_bytes(&bad).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn cursor_matches_binary_search_on_mixed_stream() {
        let trace = sample_trace("m3.medium@us-east-1a", 400, 77);
        let cursor = TraceCursor::new();
        let end = trace.end().unwrap().as_micros();
        let mut rng = SimRng::seed(5);
        let mut t = 0u64;
        for step in 0..5_000u64 {
            // Mostly-forward stream with occasional long jumps and
            // regressions (including exact change-point hits).
            t = match step % 97 {
                0 => rng.next_u64() % (end + 10),
                1 => t.saturating_sub(rng.next_u64() % 1_000_000_000),
                2 => trace.prices.points()[(rng.next_u64() % 400) as usize]
                    .0
                    .as_micros(),
                _ => t + rng.next_u64() % 50_000_000,
            };
            let at = SimTime::from_micros(t);
            assert_eq!(cursor.price_at(&trace, at), trace.price_at(at), "t={t}");
            assert_eq!(
                cursor.next_change_after(&trace, at),
                trace.prices.next_change_after(at),
                "t={t}"
            );
        }
    }

    #[test]
    fn ingest_dir_orders_by_file_name() {
        let dir = std::env::temp_dir().join(format!("stl-ingest-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = sample_trace("m3.medium@us-east-1a", 40, 11);
        let b = sample_trace("m3.large@us-east-1a", 60, 12);
        std::fs::write(dir.join("b.csv"), b.to_csv()).unwrap();
        std::fs::write(dir.join("a.csv"), a.to_csv()).unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a trace").unwrap();
        let lib = TraceLibrary::ingest_csv_dir(&dir).unwrap();
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.traces()[0].market, a.market);
        assert_eq!(lib.traces()[1].market, b.market);
        assert_eq!(lib.get(&b.market).unwrap().prices.points(), b.prices.points());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_markets_rejected() {
        let t = sample_trace("m3.medium@us-east-1a", 5, 1);
        assert!(TraceLibrary::new(vec![t.clone(), t]).is_err());
    }
}
