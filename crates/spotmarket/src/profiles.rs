//! Market profiles: per-instance-type price-dynamics parameters.
//!
//! The paper's policy evaluation is driven by EC2's real Apr-Oct 2014 spot
//! history, which is not redistributable. The generator in
//! [`crate::generator`] replaces it with a regime-switching synthetic model;
//! this module holds the calibration, chosen to reproduce the empirical
//! properties the paper reports:
//!
//! - Spot prices are *extremely low on average* relative to on-demand
//!   (Figure 6a): calm-regime medians sit near 0.11-0.14x on-demand.
//! - The availability-vs-bid curve has a knee slightly below the on-demand
//!   price, with availability at bid = on-demand between ~0.90 and ~0.999
//!   depending on type (Figure 6a).
//! - Price spikes are large — hourly percentage jumps span orders of
//!   magnitude (Figure 6b) — and frequently cross from well below on-demand
//!   to well above it (Figure 1).
//! - The `m3.medium` market was *highly stable* over the studied window
//!   (Section 6.2), giving the single-pool policy its 99.9989% availability;
//!   larger m3 types spiked several times per day.

use crate::market::TypeName;

/// Price-dynamics parameters for one instance type's spot markets.
#[derive(Debug, Clone)]
pub struct MarketProfile {
    /// On-demand $/hr price of the type.
    pub on_demand_price: f64,
    /// Median spot/on-demand ratio in the calm regime.
    pub base_ratio_median: f64,
    /// Log-space standard deviation of calm-regime fluctuation.
    pub base_sigma: f64,
    /// Mean-reversion strength per update step, in `(0, 1]`.
    pub base_reversion: f64,
    /// Mean seconds between calm-regime price updates (exponential gaps).
    pub step_mean_secs: f64,
    /// Poisson rate of price spikes, per day.
    pub spikes_per_day: f64,
    /// Minimum spike peak as a multiple of the on-demand price.
    pub spike_peak_min_ratio: f64,
    /// Pareto shape of the spike peak multiplier (smaller = heavier tail).
    pub spike_peak_alpha: f64,
    /// Median spike duration in seconds (log-normal).
    pub spike_duration_median_secs: f64,
    /// Log-space sigma of spike duration.
    pub spike_duration_sigma: f64,
    /// Price floor as a ratio of on-demand (EC2 never quotes zero).
    pub floor_ratio: f64,
}

impl MarketProfile {
    /// Expected fraction of time the price sits above on-demand
    /// (spike frequency x mean duration), a first-order availability check.
    pub fn expected_above_od_fraction(&self) -> f64 {
        // Mean of a log-normal duration: median * exp(sigma^2 / 2).
        let mean_dur =
            self.spike_duration_median_secs * (self.spike_duration_sigma.powi(2) / 2.0).exp();
        (self.spikes_per_day * mean_dur / 86_400.0).min(1.0)
    }
}

/// A named catalog entry.
#[derive(Debug, Clone)]
pub struct ProfileEntry {
    /// Instance-type name.
    pub type_name: TypeName,
    /// Relative capacity in `m3.medium`-equivalent slots (3.75 GiB units).
    pub medium_slots: u32,
    /// The profile.
    pub profile: MarketProfile,
}

fn profile(
    od: f64,
    ratio: f64,
    spikes_per_day: f64,
    dur_median: f64,
) -> MarketProfile {
    MarketProfile {
        on_demand_price: od,
        base_ratio_median: ratio,
        base_sigma: 0.30,
        base_reversion: 0.15,
        step_mean_secs: 300.0,
        spikes_per_day,
        spike_peak_min_ratio: 1.3,
        spike_peak_alpha: 1.1,
        spike_duration_median_secs: dur_median,
        spike_duration_sigma: 0.6,
        floor_ratio: 0.01,
    }
}

/// Returns the calibrated profile catalog.
///
/// The m3 family carries the paper's headline experiments; the c3/r3
/// families and `m1.small` exist for the 15-type correlation matrix
/// (Figure 6d) and the Figure 1 trace.
pub fn catalog() -> Vec<ProfileEntry> {
    let e = |name: &str, slots: u32, p: MarketProfile| ProfileEntry {
        type_name: TypeName::new(name),
        medium_slots: slots,
        profile: p,
    };
    vec![
        // The m3 family (HVM-capable; the types SpotCheck can actually use).
        // m3.medium was highly stable over the paper's window; larger m3
        // types spiked several times per day.
        e("m3.medium", 1, profile(0.070, 0.09, 0.045, 900.0)),
        e("m3.large", 2, profile(0.140, 0.12, 6.5, 200.0)),
        e("m3.xlarge", 4, profile(0.280, 0.13, 9.0, 220.0)),
        e("m3.2xlarge", 8, profile(0.560, 0.14, 12.0, 240.0)),
        // m1.small: the Figure 1 headline trace ($0.06 on-demand with
        // dramatic spikes to several dollars).
        e("m1.small", 1, profile(0.060, 0.15, 2.0, 1_800.0)),
        // c3 family (compute-optimized).
        e("c3.large", 2, profile(0.105, 0.13, 4.0, 300.0)),
        e("c3.xlarge", 4, profile(0.210, 0.14, 5.0, 280.0)),
        e("c3.2xlarge", 8, profile(0.420, 0.12, 7.0, 260.0)),
        e("c3.4xlarge", 16, profile(0.840, 0.13, 8.0, 250.0)),
        e("c3.8xlarge", 32, profile(1.680, 0.15, 10.0, 240.0)),
        // r3 family (memory-optimized).
        e("r3.large", 4, profile(0.175, 0.12, 3.0, 400.0)),
        e("r3.xlarge", 8, profile(0.350, 0.13, 4.5, 350.0)),
        e("r3.2xlarge", 16, profile(0.700, 0.14, 6.0, 300.0)),
        e("r3.4xlarge", 32, profile(1.400, 0.13, 7.5, 280.0)),
        e("r3.8xlarge", 64, profile(2.800, 0.15, 9.0, 260.0)),
    ]
}

/// Looks up a profile by instance-type name.
pub fn profile_for(type_name: &str) -> Option<ProfileEntry> {
    catalog()
        .into_iter()
        .find(|e| e.type_name.as_str() == type_name)
}

/// The 18 availability zones the correlation study spans (Figure 6c).
pub fn standard_zones() -> Vec<&'static str> {
    vec![
        "us-east-1a",
        "us-east-1b",
        "us-east-1c",
        "us-east-1d",
        "us-east-1e",
        "us-west-1a",
        "us-west-1b",
        "us-west-2a",
        "us-west-2b",
        "us-west-2c",
        "eu-west-1a",
        "eu-west-1b",
        "eu-west-1c",
        "ap-southeast-1a",
        "ap-southeast-1b",
        "ap-northeast-1a",
        "ap-northeast-1b",
        "sa-east-1a",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_fifteen_types_and_eighteen_zones() {
        assert_eq!(catalog().len(), 15, "Figure 6d uses 15 instance types");
        assert_eq!(standard_zones().len(), 18, "Figure 6c uses 18 zones");
    }

    #[test]
    fn profile_lookup_by_name() {
        let m = profile_for("m3.medium").unwrap();
        assert_eq!(m.profile.on_demand_price, 0.070);
        assert_eq!(m.medium_slots, 1);
        assert!(profile_for("nonexistent.type").is_none());
    }

    #[test]
    fn m3_family_prices_double_per_size() {
        let prices: Vec<f64> = ["m3.medium", "m3.large", "m3.xlarge", "m3.2xlarge"]
            .iter()
            .map(|n| profile_for(n).unwrap().profile.on_demand_price)
            .collect();
        for w in prices.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn medium_is_most_stable_m3_type() {
        let medium = profile_for("m3.medium").unwrap().profile;
        for other in ["m3.large", "m3.xlarge", "m3.2xlarge"] {
            let p = profile_for(other).unwrap().profile;
            assert!(
                medium.expected_above_od_fraction() < p.expected_above_od_fraction(),
                "m3.medium must be more stable than {other}"
            );
        }
        // m3.medium above-od well under 0.1% of the time (paper: highly
        // stable, ~5 nines of derived availability).
        assert!(medium.expected_above_od_fraction() < 1e-3);
    }

    #[test]
    fn larger_m3_types_spend_percent_level_time_above_od() {
        for name in ["m3.large", "m3.xlarge", "m3.2xlarge"] {
            let f = profile_for(name).unwrap().profile.expected_above_od_fraction();
            assert!(
                (0.005..0.10).contains(&f),
                "{name}: above-od fraction {f} should be percent-level (Fig 6a: 90-99% availability)"
            );
        }
    }

    #[test]
    fn medium_slots_match_memory_ratio() {
        assert_eq!(profile_for("m3.large").unwrap().medium_slots, 2);
        assert_eq!(profile_for("m3.2xlarge").unwrap().medium_slots, 8);
        assert_eq!(profile_for("c3.8xlarge").unwrap().medium_slots, 32);
    }
}
