//! # spotcheck-spotmarket
//!
//! Spot-market substrate for the SpotCheck reproduction: market identities,
//! price traces, a calibrated regime-switching trace generator standing in
//! for EC2's Apr-Oct 2014 spot history, and the statistics behind the
//! paper's Figure 6 (availability CDFs, hourly jump distributions, and
//! cross-market correlation).
//!
//! See `DESIGN.md` §2 for the substitution argument: every SpotCheck policy
//! result depends only on the distributional properties this crate
//! reproduces and verifies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod generator;
pub mod market;
pub mod predictor;
pub mod profiles;
pub mod stats;
pub mod trace;

pub use archive::{MarketSummary, TraceCursor, TraceLibrary};
pub use generator::{generate_fleet, TraceGenerator};
pub use market::{MarketId, TypeName, ZoneName};
pub use predictor::{PredictorScore, TrendPredictor};
pub use profiles::{catalog, profile_for, standard_zones, MarketProfile, ProfileEntry};
pub use trace::PriceTrace;
