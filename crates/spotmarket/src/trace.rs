//! Spot-price traces.
//!
//! A [`PriceTrace`] is the price history of one spot market: a
//! piecewise-constant series of $/hr values plus the on-demand price of the
//! same instance type, which the paper uses as the natural unit for bids and
//! availability analysis (Figure 6a plots everything against the
//! spot/on-demand ratio).

use spotcheck_simcore::metrics;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};

use crate::market::MarketId;

/// The price history of one spot market.
#[derive(Debug, Clone)]
pub struct PriceTrace {
    /// Which market this trace belongs to.
    pub market: MarketId,
    /// The fixed on-demand $/hr price of the same instance type.
    pub on_demand_price: f64,
    /// The spot price series in $/hr.
    pub prices: StepSeries,
}

impl PriceTrace {
    /// Creates a trace.
    ///
    /// # Panics
    ///
    /// Panics if the on-demand price is not finite and positive.
    pub fn new(market: MarketId, on_demand_price: f64, prices: StepSeries) -> Self {
        assert!(
            on_demand_price.is_finite() && on_demand_price > 0.0,
            "on-demand price must be positive, got {on_demand_price}"
        );
        PriceTrace {
            market,
            on_demand_price,
            prices,
        }
    }

    /// Returns the spot price at instant `t`, or `None` before the trace
    /// starts.
    pub fn price_at(&self, t: SimTime) -> Option<f64> {
        self.prices.value_at(t)
    }

    /// Returns the end of the trace (its last change point), or `None` if
    /// empty.
    pub fn end(&self) -> Option<SimTime> {
        self.prices.end()
    }

    /// Returns the fraction of `[from, to)` during which the spot price is
    /// at or below `bid` — i.e. the *availability* a bidder at `bid` would
    /// see (Figure 6a's y-axis), ignoring migration downtime.
    pub fn availability_at_bid(&self, bid: f64, from: SimTime, to: SimTime) -> Option<f64> {
        self.prices.fraction_where(from, to, |p| p <= bid)
    }

    /// Returns the time-average spot price over `[from, to)`.
    pub fn mean_price(&self, from: SimTime, to: SimTime) -> Option<f64> {
        self.prices.mean_over(from, to)
    }

    /// Returns the time-average of `min(spot, cap)` over `[from, to)` — the
    /// effective price paid by a strategy that switches to a `cap`-priced
    /// alternative whenever spot exceeds it.
    pub fn mean_capped_price(&self, cap: f64, from: SimTime, to: SimTime) -> Option<f64> {
        if to <= from {
            return None;
        }
        let segments = self.prices.segments_in(from, to);
        if !segments.covers_from() {
            return None;
        }
        let mut acc = 0.0;
        let mut walked = 0u64;
        for (start, end, value) in segments {
            acc += value.min(cap) * end.since(start).as_secs_f64();
            walked += 1;
        }
        metrics::add(walked);
        Some(acc / to.since(from).as_secs_f64())
    }

    /// Counts upward crossings of `bid` in `(from, to]` — each is a
    /// revocation event for servers bid at `bid` in this market.
    pub fn revocations_at_bid(&self, bid: f64, from: SimTime, to: SimTime) -> usize {
        // One seek to the window start, then a linear walk over the change
        // points in `(from, to]`.
        let points = self.prices.points();
        let start = points.partition_point(|(t, _)| *t <= from);
        let mut above = start > 0 && points[start - 1].1 > bid;
        let mut count = 0;
        let mut walked = 0u64;
        for (t, p) in &points[start..] {
            if *t > to {
                break;
            }
            let now_above = *p > bid;
            if now_above && !above {
                count += 1;
            }
            above = now_above;
            walked += 1;
        }
        metrics::add(walked);
        count
    }

    /// Resamples the trace at `step` over `[from, to)` (for correlation and
    /// jump statistics).
    pub fn resample(&self, from: SimTime, to: SimTime, step: SimDuration) -> Vec<f64> {
        self.prices.resample(from, to, step)
    }

    /// Serializes the trace to the plain-text format
    /// `# market,on_demand_price` header plus `time_secs,price` lines.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        // ~24 bytes per `time,price` line; sizing up front and writing in
        // place avoids one temporary String per point.
        let mut out = String::with_capacity(64 + 24 * self.prices.len());
        let _ = writeln!(out, "# market={} od={}", self.market, self.on_demand_price);
        for (t, v) in self.prices.points() {
            let _ = writeln!(out, "{},{v}", t.as_secs_f64());
        }
        out
    }

    /// Parses a trace from the format produced by [`PriceTrace::to_csv`],
    /// via the single-pass byte scanner in [`crate::archive`].
    ///
    /// Accepts `\r\n` line endings; rejects non-increasing timestamps and
    /// non-finite prices with a line-numbered error (line 1 is the
    /// header).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_csv(text: &str) -> Result<PriceTrace, String> {
        crate::archive::parse_csv_bytes(text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> PriceTrace {
        // od = 0.07; spot sits at 0.02, spikes to 0.50 during [100, 200).
        let series = StepSeries::from_points(vec![
            (SimTime::from_secs(0), 0.02),
            (SimTime::from_secs(100), 0.50),
            (SimTime::from_secs(200), 0.02),
        ]);
        PriceTrace::new(MarketId::new("m3.medium", "us-east-1a"), 0.07, series)
    }

    #[test]
    fn availability_at_bid_counts_time_below() {
        let t = trace();
        let a = t
            .availability_at_bid(0.07, SimTime::ZERO, SimTime::from_secs(1000))
            .unwrap();
        assert!((a - 0.9).abs() < 1e-12, "a={a}");
        // A bid above the spike never loses the server.
        let a = t
            .availability_at_bid(1.0, SimTime::ZERO, SimTime::from_secs(1000))
            .unwrap();
        assert_eq!(a, 1.0);
    }

    #[test]
    fn mean_and_capped_mean() {
        let t = trace();
        let m = t.mean_price(SimTime::ZERO, SimTime::from_secs(1000)).unwrap();
        assert!((m - (0.02 * 900.0 + 0.50 * 100.0) / 1000.0).abs() < 1e-12);
        // Capping at the on-demand price replaces the spike with 0.07.
        let c = t
            .mean_capped_price(0.07, SimTime::ZERO, SimTime::from_secs(1000))
            .unwrap();
        assert!((c - (0.02 * 900.0 + 0.07 * 100.0) / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn revocations_count_upward_crossings() {
        let t = trace();
        assert_eq!(
            t.revocations_at_bid(0.07, SimTime::ZERO, SimTime::from_secs(1000)),
            1
        );
        assert_eq!(
            t.revocations_at_bid(1.0, SimTime::ZERO, SimTime::from_secs(1000)),
            0
        );
        // Already above at window start: the crossing happened earlier.
        assert_eq!(
            t.revocations_at_bid(0.07, SimTime::from_secs(150), SimTime::from_secs(1000)),
            0
        );
    }

    #[test]
    fn csv_roundtrip() {
        let t = trace();
        let text = t.to_csv();
        let back = PriceTrace::from_csv(&text).unwrap();
        assert_eq!(back.market, t.market);
        assert_eq!(back.on_demand_price, t.on_demand_price);
        assert_eq!(back.prices.points(), t.prices.points());
    }

    #[test]
    fn csv_rejects_malformed() {
        assert!(PriceTrace::from_csv("").is_err());
        assert!(PriceTrace::from_csv("# od=0.07\n0,0.02\n").is_err());
        assert!(PriceTrace::from_csv("# market=a@b od=0.07\nnot-a-line\n").is_err());
        assert!(PriceTrace::from_csv("# market=a@b od=0.07\n-1,0.02\n").is_err());
    }

    #[test]
    fn csv_skips_comments_and_blanks() {
        let text = "# market=a@b od=0.07\n\n# comment\n0,0.02\n";
        let t = PriceTrace::from_csv(text).unwrap();
        assert_eq!(t.prices.len(), 1);
    }

    #[test]
    fn csv_accepts_crlf_line_endings() {
        let text = "# market=a@b od=0.07\r\n0,0.02\r\n100,0.50\r\n";
        let t = PriceTrace::from_csv(text).unwrap();
        assert_eq!(t.prices.len(), 2);
        assert_eq!(t.prices.points()[1], (SimTime::from_micros(100_000_000), 0.50));
    }

    #[test]
    fn csv_rejects_non_increasing_timestamps_with_line_number() {
        // Line 4 repeats line 3's timestamp: the error must name line 4
        // rather than panicking inside StepSeries.
        let text = "# market=a@b od=0.07\n0,0.02\n100,0.50\n100,0.60\n";
        let err = PriceTrace::from_csv(text).unwrap_err();
        assert!(err.contains("line 4"), "err: {err}");
        assert!(err.contains("strictly increasing"), "err: {err}");
        // A regression (not just a tie) is rejected the same way.
        let text = "# market=a@b od=0.07\n0,0.02\n100,0.50\n50,0.60\n";
        let err = PriceTrace::from_csv(text).unwrap_err();
        assert!(err.contains("line 4"), "err: {err}");
    }
}
