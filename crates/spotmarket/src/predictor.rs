//! Revocation prediction from price trends.
//!
//! Paper §3.2: proactive migrations "incur significant risk of losing VM
//! state unless they are able to predict an imminent revocation with high
//! confidence, e.g., by tracking and predicting a rise in market prices of
//! spot servers". This module implements that tracker — a simple
//! rising-price alarm — and, more importantly, the *evaluation harness*
//! that quantifies exactly the trade-off the paper warns about: recall
//! (what fraction of revocations were foreseen in time for a live
//! migration) versus precision (how many alarms were false).

use spotcheck_simcore::time::{SimDuration, SimTime};

use crate::trace::PriceTrace;

/// A rising-price revocation predictor.
#[derive(Debug, Clone)]
pub struct TrendPredictor {
    /// Lookback window for the trend estimate.
    pub window: SimDuration,
    /// Alarm when the current price exceeds this fraction of the bid...
    pub alarm_ratio: f64,
    /// ...and has grown by at least this factor over the window.
    pub rise_factor: f64,
}

impl Default for TrendPredictor {
    fn default() -> Self {
        TrendPredictor {
            window: SimDuration::from_secs(600),
            alarm_ratio: 0.5,
            rise_factor: 1.25,
        }
    }
}

/// Outcome of evaluating a predictor against a trace.
#[derive(Debug, Clone, Default)]
pub struct PredictorScore {
    /// Revocations foreseen at least `lead` in advance.
    pub hits: usize,
    /// Revocations with no timely alarm.
    pub misses: usize,
    /// Alarms not followed by a revocation within the lead window.
    pub false_alarms: usize,
}

impl PredictorScore {
    /// Fraction of revocations foreseen.
    pub fn recall(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of alarms that were real.
    pub fn precision(&self) -> f64 {
        let total = self.hits + self.false_alarms;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl TrendPredictor {
    /// Returns true if the predictor would raise an alarm at `now` for a
    /// server bid at `bid`.
    pub fn alarmed(&self, trace: &PriceTrace, bid: f64, now: SimTime) -> bool {
        let Some(price) = trace.price_at(now) else {
            return false;
        };
        if price < self.alarm_ratio * bid {
            return false;
        }
        if price > bid {
            // Already above the bid: the revocation is happening, not
            // predicted.
            return false;
        }
        let earlier_t = SimTime::from_micros(
            now.as_micros().saturating_sub(self.window.as_micros()),
        );
        let earlier = trace.price_at(earlier_t).unwrap_or(price);
        price >= earlier * self.rise_factor
    }

    /// Evaluates the predictor over `[from, to)` for a bid, requiring
    /// alarms at least `lead` before each revocation. The trace is scanned
    /// on a one-minute grid (matching a controller's polling cadence).
    pub fn evaluate(
        &self,
        trace: &PriceTrace,
        bid: f64,
        lead: SimDuration,
        from: SimTime,
        to: SimTime,
    ) -> PredictorScore {
        let step = SimDuration::from_secs(60);
        // Collect alarm instants.
        let mut alarms = Vec::new();
        let mut t = from;
        while t < to {
            if self.alarmed(trace, bid, t) {
                alarms.push(t);
            }
            t += step;
        }
        // Collect revocation instants (upward bid crossings).
        let mut revocations = Vec::new();
        let mut above = trace.price_at(from).map(|p| p > bid).unwrap_or(false);
        let mut cursor = from;
        while let Some((at, p)) = trace.prices.next_change_after(cursor) {
            if at >= to {
                break;
            }
            let now_above = p > bid;
            if now_above && !above {
                revocations.push(at);
            }
            above = now_above;
            cursor = at;
        }

        // Score: a revocation is a hit if some alarm preceded it by at
        // least `lead` but no more than 10x lead (stale alarms don't
        // count); an alarm is false if no revocation follows within 10x
        // lead.
        let horizon = lead.mul_f64(10.0);
        let mut score = PredictorScore::default();
        for &r in &revocations {
            let foreseen = alarms.iter().any(|&a| {
                a + lead <= r && r.saturating_since(a) <= horizon
            });
            if foreseen {
                score.hits += 1;
            } else {
                score.misses += 1;
            }
        }
        for &a in &alarms {
            let useful = revocations
                .iter()
                .any(|&r| a + lead <= r && r.saturating_since(a) <= horizon);
            if !useful {
                score.false_alarms += 1;
            }
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::MarketId;
    use spotcheck_simcore::series::StepSeries;

    /// A trace that creeps up toward the bid before crossing it, then
    /// falls back.
    fn creeping_trace() -> PriceTrace {
        let mut s = StepSeries::new();
        s.push(SimTime::ZERO, 0.010);
        // Creep: 0.02 -> 0.04 -> 0.06 over 30 minutes, cross at t=2400s.
        s.push(SimTime::from_secs(600), 0.020);
        s.push(SimTime::from_secs(1_200), 0.040);
        s.push(SimTime::from_secs(1_800), 0.060);
        s.push(SimTime::from_secs(2_400), 0.200); // above bid 0.07
        s.push(SimTime::from_secs(3_600), 0.010);
        PriceTrace::new(MarketId::new("m3.medium", "z"), 0.070, s)
    }

    /// A trace that jumps from calm straight over the bid (unpredictable).
    fn cliff_trace() -> PriceTrace {
        let s = StepSeries::from_points(vec![
            (SimTime::ZERO, 0.010),
            (SimTime::from_secs(2_400), 0.500),
            (SimTime::from_secs(3_600), 0.010),
        ]);
        PriceTrace::new(MarketId::new("m3.medium", "z"), 0.070, s)
    }

    #[test]
    fn alarm_fires_on_rising_prices_near_the_bid() {
        let p = TrendPredictor::default();
        let t = creeping_trace();
        // At t=2000s the price is 0.06 (>= 0.5*0.07) and rising.
        assert!(p.alarmed(&t, 0.07, SimTime::from_secs(2_000)));
        // At t=300s the price is far below the alarm ratio.
        assert!(!p.alarmed(&t, 0.07, SimTime::from_secs(300)));
        // Above the bid: not a prediction anymore.
        assert!(!p.alarmed(&t, 0.07, SimTime::from_secs(2_500)));
    }

    #[test]
    fn creeping_revocation_is_foreseen() {
        let p = TrendPredictor::default();
        let t = creeping_trace();
        let score = p.evaluate(
            &t,
            0.07,
            SimDuration::from_secs(120),
            SimTime::ZERO,
            SimTime::from_secs(3_600),
        );
        assert_eq!(score.hits, 1);
        assert_eq!(score.misses, 0);
        assert!(score.recall() == 1.0);
    }

    #[test]
    fn cliff_revocation_is_missed() {
        // The §3.2 caveat: a price that jumps straight over the bid gives
        // the predictor nothing to work with.
        let p = TrendPredictor::default();
        let t = cliff_trace();
        let score = p.evaluate(
            &t,
            0.07,
            SimDuration::from_secs(120),
            SimTime::ZERO,
            SimTime::from_secs(3_600),
        );
        assert_eq!(score.hits, 0);
        assert_eq!(score.misses, 1);
        assert_eq!(score.recall(), 0.0);
    }

    #[test]
    fn flat_trace_raises_no_alarms() {
        let s = StepSeries::from_points(vec![(SimTime::ZERO, 0.06)]);
        let t = PriceTrace::new(MarketId::new("m3.medium", "z"), 0.070, s);
        let p = TrendPredictor::default();
        let score = p.evaluate(
            &t,
            0.07,
            SimDuration::from_secs(120),
            SimTime::ZERO,
            SimTime::from_hours(2),
        );
        // High price but not rising: no alarms, no revocations.
        assert_eq!(score.false_alarms, 0);
        assert_eq!(score.hits + score.misses, 0);
        assert_eq!(score.precision(), 1.0);
    }

    #[test]
    fn lowering_the_alarm_ratio_trades_precision_for_recall() {
        // Against generated history: a more trigger-happy predictor must
        // have at least as many (hits + false alarms).
        use crate::generator::TraceGenerator;
        use crate::profiles::profile_for;
        use spotcheck_simcore::rng::SimRng;
        let profile = profile_for("m3.large").unwrap().profile;
        let mut rng = SimRng::seed(77);
        let trace = TraceGenerator::new(profile).generate(
            MarketId::new("m3.large", "z"),
            SimDuration::from_days(30),
            &mut rng,
        );
        let strict = TrendPredictor {
            alarm_ratio: 0.8,
            ..TrendPredictor::default()
        };
        let eager = TrendPredictor {
            alarm_ratio: 0.3,
            rise_factor: 1.05,
            ..TrendPredictor::default()
        };
        let lead = SimDuration::from_secs(120);
        let end = SimTime::from_days(30);
        let s1 = strict.evaluate(&trace, 0.14, lead, SimTime::ZERO, end);
        let s2 = eager.evaluate(&trace, 0.14, lead, SimTime::ZERO, end);
        let alarms1 = s1.hits + s1.false_alarms;
        let alarms2 = s2.hits + s2.false_alarms;
        assert!(alarms2 >= alarms1, "eager must alarm at least as often");
    }
}
