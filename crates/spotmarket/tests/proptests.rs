//! Property tests for the spot-market substrate.

use proptest::prelude::*;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;

fn arb_points() -> impl Strategy<Value = Vec<(u64, f64)>> {
    proptest::collection::vec((1u64..10_000, 0.0001f64..9.9999), 1..80).prop_map(|steps| {
        let mut t = 0u64;
        let mut out = vec![(0u64, 0.02)];
        for (dt, p) in steps {
            t += dt;
            // Quantize like the generator so CSV parsing round-trips
            // exactly.
            out.push((t, (p * 10_000.0).round() / 10_000.0));
        }
        out
    })
}

fn trace_from(points: &[(u64, f64)]) -> PriceTrace {
    let mut s = StepSeries::new();
    for &(t, p) in points {
        s.push(SimTime::from_secs(t), p);
    }
    PriceTrace::new(MarketId::new("m3.medium", "us-east-1a"), 0.07, s)
}

proptest! {
    /// CSV serialization round-trips arbitrary traces exactly.
    #[test]
    fn csv_roundtrip_exact(points in arb_points()) {
        let trace = trace_from(&points);
        let back = PriceTrace::from_csv(&trace.to_csv()).unwrap();
        prop_assert_eq!(back.market, trace.market.clone());
        prop_assert_eq!(back.on_demand_price, trace.on_demand_price);
        prop_assert_eq!(back.prices.points(), trace.prices.points());
    }

    /// Availability + above-bid fraction always sum to 1; capped mean is
    /// never above the plain mean nor above the cap.
    #[test]
    fn availability_and_means_are_consistent(points in arb_points(), bid in 0.001f64..5.0) {
        let trace = trace_from(&points);
        let end = SimTime::from_secs(20_000);
        let a = trace.availability_at_bid(bid, SimTime::ZERO, end).unwrap();
        let above = trace
            .prices
            .fraction_where(SimTime::ZERO, end, |p| p > bid)
            .unwrap();
        prop_assert!((a + above - 1.0).abs() < 1e-9);
        let mean = trace.mean_price(SimTime::ZERO, end).unwrap();
        let capped = trace.mean_capped_price(bid, SimTime::ZERO, end).unwrap();
        prop_assert!(capped <= mean + 1e-12);
        prop_assert!(capped <= bid + 1e-12);
    }

    /// Revocation-count invariants. (Counts are *not* monotone in the bid
    /// — a price oscillating just below a high bid crosses it repeatedly
    /// while staying above a low bid entirely — but they are bounded by
    /// the number of price changes and vanish above the trace maximum.)
    #[test]
    fn revocation_counts_are_bounded(points in arb_points()) {
        let trace = trace_from(&points);
        let end = SimTime::from_secs(20_000);
        let max_price = points.iter().map(|&(_, p)| p).fold(0.0, f64::max);
        // Bidding above the maximum price: never revoked.
        prop_assert_eq!(
            trace.revocations_at_bid(max_price + 0.01, SimTime::ZERO, end),
            0
        );
        // Any bid: at most one revocation per price change.
        for i in 1..=10 {
            let bid = i as f64 / 2.0;
            let r = trace.revocations_at_bid(bid, SimTime::ZERO, end);
            prop_assert!(r <= points.len());
            // Each revocation implies nonzero time above the bid.
            if r > 0 {
                let above = trace
                    .prices
                    .fraction_where(SimTime::ZERO, end, |p| p > bid)
                    .unwrap();
                prop_assert!(above > 0.0);
            }
        }
    }

    /// Resampling never invents values and respects window bounds.
    #[test]
    fn resample_values_are_real(points in arb_points()) {
        let trace = trace_from(&points);
        let xs = trace.resample(
            SimTime::ZERO,
            SimTime::from_secs(20_000),
            SimDuration::from_secs(500),
        );
        prop_assert_eq!(xs.len(), 40);
        let allowed: Vec<f64> = points.iter().map(|&(_, p)| p).collect();
        for x in xs {
            prop_assert!(allowed.contains(&x));
        }
    }
}
