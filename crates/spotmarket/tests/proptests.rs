//! Randomized invariant tests for the spot-market substrate, driven by
//! seeded [`SimRng`] streams so every case is reproducible.

use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;

const CASES: u64 = 64;

fn random_points(rng: &mut SimRng) -> Vec<(u64, f64)> {
    let n = rng.gen_range(1, 80) as usize;
    let mut t = 0u64;
    let mut out = vec![(0u64, 0.02)];
    for _ in 0..n {
        t += rng.gen_range(1, 10_000);
        let p = 0.0001 + rng.next_f64() * (9.9999 - 0.0001);
        // Quantize like the generator so CSV parsing round-trips exactly.
        out.push((t, (p * 10_000.0).round() / 10_000.0));
    }
    out
}

fn trace_from(points: &[(u64, f64)]) -> PriceTrace {
    let mut s = StepSeries::new();
    for &(t, p) in points {
        s.push(SimTime::from_secs(t), p);
    }
    PriceTrace::new(MarketId::new("m3.medium", "us-east-1a"), 0.07, s)
}

/// CSV serialization round-trips arbitrary traces exactly.
#[test]
fn csv_roundtrip_exact() {
    let mut rng = SimRng::seed(0xC57);
    for case in 0..CASES {
        let points = random_points(&mut rng);
        let trace = trace_from(&points);
        let back = PriceTrace::from_csv(&trace.to_csv()).unwrap();
        assert_eq!(back.market, trace.market.clone(), "case {case}");
        assert_eq!(back.on_demand_price, trace.on_demand_price, "case {case}");
        assert_eq!(back.prices.points(), trace.prices.points(), "case {case}");
    }
}

/// Availability + above-bid fraction always sum to 1; capped mean is
/// never above the plain mean nor above the cap.
#[test]
fn availability_and_means_are_consistent() {
    let mut rng = SimRng::seed(0xA0A1);
    for case in 0..CASES {
        let points = random_points(&mut rng);
        let bid = 0.001 + rng.next_f64() * (5.0 - 0.001);
        let trace = trace_from(&points);
        let end = SimTime::from_secs(20_000);
        let a = trace.availability_at_bid(bid, SimTime::ZERO, end).unwrap();
        let above = trace
            .prices
            .fraction_where(SimTime::ZERO, end, |p| p > bid)
            .unwrap();
        assert!((a + above - 1.0).abs() < 1e-9, "case {case}");
        let mean = trace.mean_price(SimTime::ZERO, end).unwrap();
        let capped = trace.mean_capped_price(bid, SimTime::ZERO, end).unwrap();
        assert!(capped <= mean + 1e-12, "case {case}");
        assert!(capped <= bid + 1e-12, "case {case}");
    }
}

/// Revocation-count invariants. (Counts are *not* monotone in the bid
/// — a price oscillating just below a high bid crosses it repeatedly
/// while staying above a low bid entirely — but they are bounded by
/// the number of price changes and vanish above the trace maximum.)
#[test]
fn revocation_counts_are_bounded() {
    let mut rng = SimRng::seed(0x2EF0C);
    for case in 0..CASES {
        let points = random_points(&mut rng);
        let trace = trace_from(&points);
        let end = SimTime::from_secs(20_000);
        let max_price = points.iter().map(|&(_, p)| p).fold(0.0, f64::max);
        // Bidding above the maximum price: never revoked.
        assert_eq!(
            trace.revocations_at_bid(max_price + 0.01, SimTime::ZERO, end),
            0,
            "case {case}"
        );
        // Any bid: at most one revocation per price change.
        for i in 1..=10 {
            let bid = i as f64 / 2.0;
            let r = trace.revocations_at_bid(bid, SimTime::ZERO, end);
            assert!(r <= points.len(), "case {case}");
            // Each revocation implies nonzero time above the bid.
            if r > 0 {
                let above = trace
                    .prices
                    .fraction_where(SimTime::ZERO, end, |p| p > bid)
                    .unwrap();
                assert!(above > 0.0, "case {case}");
            }
        }
    }
}

/// Resampling never invents values and respects window bounds.
#[test]
fn resample_values_are_real() {
    let mut rng = SimRng::seed(0x2E5A);
    for case in 0..CASES {
        let points = random_points(&mut rng);
        let trace = trace_from(&points);
        let xs = trace.resample(
            SimTime::ZERO,
            SimTime::from_secs(20_000),
            SimDuration::from_secs(500),
        );
        assert_eq!(xs.len(), 40, "case {case}");
        let allowed: Vec<f64> = points.iter().map(|&(_, p)| p).collect();
        for x in xs {
            assert!(allowed.contains(&x), "case {case}: invented value {x}");
        }
    }
}
