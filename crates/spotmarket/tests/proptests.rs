//! Randomized invariant tests for the spot-market substrate, driven by
//! seeded [`SimRng`] streams so every case is reproducible.

use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_simcore::varint;
use spotcheck_spotmarket::archive::TraceLibrary;
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;

const CASES: u64 = 64;

fn random_points(rng: &mut SimRng) -> Vec<(u64, f64)> {
    let n = rng.gen_range(1, 80) as usize;
    let mut t = 0u64;
    let mut out = vec![(0u64, 0.02)];
    for _ in 0..n {
        t += rng.gen_range(1, 10_000);
        let p = 0.0001 + rng.next_f64() * (9.9999 - 0.0001);
        // Quantize like the generator so CSV parsing round-trips exactly.
        out.push((t, (p * 10_000.0).round() / 10_000.0));
    }
    out
}

fn trace_from(points: &[(u64, f64)]) -> PriceTrace {
    let mut s = StepSeries::new();
    for &(t, p) in points {
        s.push(SimTime::from_secs(t), p);
    }
    PriceTrace::new(MarketId::new("m3.medium", "us-east-1a"), 0.07, s)
}

/// CSV serialization round-trips arbitrary traces exactly.
#[test]
fn csv_roundtrip_exact() {
    let mut rng = SimRng::seed(0xC57);
    for case in 0..CASES {
        let points = random_points(&mut rng);
        let trace = trace_from(&points);
        let back = PriceTrace::from_csv(&trace.to_csv()).unwrap();
        assert_eq!(back.market, trace.market.clone(), "case {case}");
        assert_eq!(back.on_demand_price, trace.on_demand_price, "case {case}");
        assert_eq!(back.prices.points(), trace.prices.points(), "case {case}");
    }
}

/// Availability + above-bid fraction always sum to 1; capped mean is
/// never above the plain mean nor above the cap.
#[test]
fn availability_and_means_are_consistent() {
    let mut rng = SimRng::seed(0xA0A1);
    for case in 0..CASES {
        let points = random_points(&mut rng);
        let bid = 0.001 + rng.next_f64() * (5.0 - 0.001);
        let trace = trace_from(&points);
        let end = SimTime::from_secs(20_000);
        let a = trace.availability_at_bid(bid, SimTime::ZERO, end).unwrap();
        let above = trace
            .prices
            .fraction_where(SimTime::ZERO, end, |p| p > bid)
            .unwrap();
        assert!((a + above - 1.0).abs() < 1e-9, "case {case}");
        let mean = trace.mean_price(SimTime::ZERO, end).unwrap();
        let capped = trace.mean_capped_price(bid, SimTime::ZERO, end).unwrap();
        assert!(capped <= mean + 1e-12, "case {case}");
        assert!(capped <= bid + 1e-12, "case {case}");
    }
}

/// Revocation-count invariants. (Counts are *not* monotone in the bid
/// — a price oscillating just below a high bid crosses it repeatedly
/// while staying above a low bid entirely — but they are bounded by
/// the number of price changes and vanish above the trace maximum.)
#[test]
fn revocation_counts_are_bounded() {
    let mut rng = SimRng::seed(0x2EF0C);
    for case in 0..CASES {
        let points = random_points(&mut rng);
        let trace = trace_from(&points);
        let end = SimTime::from_secs(20_000);
        let max_price = points.iter().map(|&(_, p)| p).fold(0.0, f64::max);
        // Bidding above the maximum price: never revoked.
        assert_eq!(
            trace.revocations_at_bid(max_price + 0.01, SimTime::ZERO, end),
            0,
            "case {case}"
        );
        // Any bid: at most one revocation per price change.
        for i in 1..=10 {
            let bid = i as f64 / 2.0;
            let r = trace.revocations_at_bid(bid, SimTime::ZERO, end);
            assert!(r <= points.len(), "case {case}");
            // Each revocation implies nonzero time above the bid.
            if r > 0 {
                let above = trace
                    .prices
                    .fraction_where(SimTime::ZERO, end, |p| p > bid)
                    .unwrap();
                assert!(above > 0.0, "case {case}");
            }
        }
    }
}

/// A random library: 1..6 distinct markets, each with random points and
/// an arbitrary (not quantized) on-demand price. The occasional empty
/// trace exercises the zero-point block encoding.
fn random_library(rng: &mut SimRng) -> TraceLibrary {
    let types = ["m3.medium", "m3.large", "m3.xlarge", "c3.large", "r3.large", "m1.small"];
    let zones = ["us-east-1a", "us-east-1b"];
    let n = rng.gen_range(1, 7) as usize;
    let mut traces = Vec::with_capacity(n);
    for i in 0..n {
        let market = MarketId::new(types[i % types.len()], zones[i / types.len()]);
        let od = 0.001 + rng.next_f64() * 3.0;
        let mut s = StepSeries::new();
        if rng.gen_range(0, 8) != 0 {
            // Alternate delta ranges across markets: small deltas keep
            // every gap under u32::MAX (fixed-u32 timestamp codec),
            // large ones force varint blocks — so a library mixes both
            // codecs and the round-trip/corruption checks cover each.
            let max_delta = if i % 2 == 0 { 3_000_000_000 } else { 50_000_000_000 };
            let mut t = rng.gen_range(0, 1_000_000);
            for _ in 0..rng.gen_range(1, 60) {
                // Raw micros and raw f64 prices: the binary codec must be
                // bit-exact without any quantization crutch.
                s.push(SimTime::from_micros(t), 0.0001 + rng.next_f64() * 10.0);
                t += rng.gen_range(1, max_delta);
            }
        }
        traces.push(PriceTrace::new(market, od, s));
    }
    TraceLibrary::new(traces).unwrap()
}

/// Binary `.stl` serialization round-trips arbitrary libraries bit-exact,
/// and re-encoding the decoded library reproduces the bytes.
#[test]
fn stl_roundtrip_bit_exact() {
    let mut rng = SimRng::seed(0x57B1);
    for case in 0..CASES {
        let lib = random_library(&mut rng);
        let bytes = lib.to_bytes();
        let back = TraceLibrary::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(back.len(), lib.len(), "case {case}");
        for (a, b) in lib.traces().iter().zip(back.traces()) {
            assert_eq!(a.market, b.market, "case {case}");
            assert_eq!(
                a.on_demand_price.to_bits(),
                b.on_demand_price.to_bits(),
                "case {case}"
            );
            assert_eq!(a.prices.points().len(), b.prices.points().len(), "case {case}");
            for (&(ta, pa), &(tb, pb)) in a.prices.points().iter().zip(b.prices.points()) {
                assert_eq!(ta, tb, "case {case}");
                assert_eq!(pa.to_bits(), pb.to_bits(), "case {case}");
            }
        }
        assert_eq!(back.to_bytes(), bytes, "case {case}: re-encode differs");
    }
}

/// Truncating an archive at any point, or flipping any single byte,
/// yields an error — never a panic, never a silently wrong library.
/// (Every byte is covered: the digest protects `[0..len-16]`, the footer
/// digest field is self-checking, and the end magic is validated.)
#[test]
fn stl_truncation_and_corruption_always_rejected() {
    let mut rng = SimRng::seed(0xBADF);
    for case in 0..CASES {
        let lib = random_library(&mut rng);
        let bytes = lib.to_bytes();
        // Truncations: structural boundaries plus random interior cuts.
        let mut cuts = vec![0, 1, 7, 8, bytes.len() - 1, bytes.len() - 16, bytes.len() - 24];
        for _ in 0..16 {
            cuts.push(rng.gen_range(0, bytes.len() as u64) as usize);
        }
        for cut in cuts {
            assert!(
                TraceLibrary::from_bytes(&bytes[..cut]).is_err(),
                "case {case}: truncation at {cut} accepted"
            );
        }
        // Single-byte flips, including in the footer and magics.
        let mut flips = vec![0, 8, bytes.len() - 1, bytes.len() - 9, bytes.len() - 17];
        for _ in 0..24 {
            flips.push(rng.gen_range(0, bytes.len() as u64) as usize);
        }
        for at in flips {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 1 << (rng.gen_range(0, 8) as u32);
            assert!(
                TraceLibrary::from_bytes(&corrupt).is_err(),
                "case {case}: flip at {at} accepted"
            );
        }
    }
}

/// The varint codec round-trips arbitrary `u64`s (boundary values
/// included) and rejects truncated encodings.
#[test]
fn varint_roundtrip_and_truncation() {
    let mut rng = SimRng::seed(0x7A21);
    let mut values: Vec<u64> = vec![0, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX];
    for shift in 0..64 {
        values.push(1u64 << shift);
        values.push((1u64 << shift) - 1);
    }
    for _ in 0..512 {
        values.push(rng.next_u64() >> (rng.gen_range(0, 64) as u32));
    }
    let mut buf = Vec::new();
    for &v in &values {
        buf.clear();
        varint::put_u64(&mut buf, v);
        assert!(buf.len() <= varint::MAX_VARINT_LEN);
        let mut pos = 0;
        assert_eq!(varint::get_u64(&buf, &mut pos), Ok(v));
        assert_eq!(pos, buf.len(), "trailing bytes after {v}");
        // Every proper prefix is a truncation error.
        for cut in 0..buf.len() {
            let mut p = 0;
            assert!(varint::get_u64(&buf[..cut], &mut p).is_err(), "prefix {cut} of {v}");
        }
    }
}

/// Resampling never invents values and respects window bounds.
#[test]
fn resample_values_are_real() {
    let mut rng = SimRng::seed(0x2E5A);
    for case in 0..CASES {
        let points = random_points(&mut rng);
        let trace = trace_from(&points);
        let xs = trace.resample(
            SimTime::ZERO,
            SimTime::from_secs(20_000),
            SimDuration::from_secs(500),
        );
        assert_eq!(xs.len(), 40, "case {case}");
        let allowed: Vec<f64> = points.iter().map(|&(_, p)| p).collect();
        for x in xs {
            assert!(allowed.contains(&x), "case {case}: invented value {x}");
        }
    }
}
