//! # spotcheck-workloads
//!
//! Application models standing in for the paper's two benchmarks
//! (TPC-W and SPECjbb2005, §6). The evaluation uses the benchmarks in two
//! roles, and the models reproduce both:
//!
//! 1. **Memory-dirtying load generators** — each workload exposes a
//!    hot/cold [`DirtyModel`] whose distinct-dirty rate determines its
//!    continuous-checkpoint stream demand (the x-axis dynamics of
//!    Figure 7).
//! 2. **A scalar performance metric** — TPC-W response time (ms) and
//!    SPECjbb throughput (bops), as functions of the checkpointing state:
//!    baseline, checkpointing-enabled (+15% TPC-W response, no visible
//!    SPECjbb effect), backup-saturated (both degrade ~30% at 50 VMs per
//!    backup), and lazy-restoring (TPC-W 29 ms → 60 ms; Figure 9).
//!
//! Calibration anchors are the paper's reported operating points; the
//! *dynamics* (when saturation begins, how sharply performance falls) come
//! from the substrate models, not from hard-coded curves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;
pub mod specjbb;
pub mod tpcw;

pub use perf::{ApplicationModel, MetricKind, PerfContext};
pub use specjbb::SpecJbb;
pub use tpcw::TpcW;

use spotcheck_nestedvm::memory::DirtyModel;

/// The two benchmark workloads of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// TPC-W "ordering" mix on Tomcat + MySQL: latency-sensitive,
    /// interactive.
    TpcW,
    /// SPECjbb2005: throughput-oriented, more memory-intensive.
    SpecJbb,
}

impl WorkloadKind {
    /// Both workloads.
    pub const ALL: [WorkloadKind; 2] = [WorkloadKind::TpcW, WorkloadKind::SpecJbb];

    /// Instantiates the model.
    pub fn model(self) -> Box<dyn ApplicationModel> {
        match self {
            WorkloadKind::TpcW => Box::new(TpcW::default()),
            WorkloadKind::SpecJbb => Box::new(SpecJbb::default()),
        }
    }

    /// The workload's dirty model (shared by both the checkpoint-demand
    /// and migration simulations).
    pub fn dirty_model(self) -> DirtyModel {
        self.model().dirty_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotcheck_nestedvm::memory::PAGE_SIZE;
    use spotcheck_simcore::time::SimDuration;

    #[test]
    fn specjbb_is_more_memory_intensive_than_tpcw() {
        // Paper: "SPECjbb is ... generally more memory-intensive than
        // TPC-W".
        let t = WorkloadKind::TpcW.dirty_model();
        let s = WorkloadKind::SpecJbb.dirty_model();
        let rate =
            |m: &spotcheck_nestedvm::memory::DirtyModel| m.distinct_dirty_rate(786_432, SimDuration::from_secs(1));
        assert!(rate(&s) > rate(&t));
    }

    #[test]
    fn checkpoint_stream_demands_near_calibration() {
        // Per-VM stream demand should sit near 3 MB/s so that a 125 MB/s
        // backup NIC saturates between 35 and 45 VMs (Figure 7's knee).
        for kind in WorkloadKind::ALL {
            let m = kind.dirty_model();
            let bps = m.distinct_dirty_rate(786_432, SimDuration::from_secs(1)) * PAGE_SIZE as f64;
            assert!(
                (2.0e6..4.0e6).contains(&bps),
                "{kind:?}: stream demand {bps}"
            );
        }
    }

    #[test]
    fn models_instantiate() {
        assert_eq!(WorkloadKind::TpcW.model().metric_kind(), MetricKind::ResponseTimeMs);
        assert_eq!(WorkloadKind::SpecJbb.model().metric_kind(), MetricKind::ThroughputBops);
    }
}
