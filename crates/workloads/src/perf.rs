//! The application-performance interface.

use spotcheck_nestedvm::memory::DirtyModel;

/// What the workload's scalar metric measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Mean request response time in milliseconds (lower is better).
    ResponseTimeMs,
    /// Business operations per second (higher is better).
    ThroughputBops,
}

/// The execution context a performance sample is taken under.
#[derive(Debug, Clone, Copy)]
pub struct PerfContext {
    /// Continuous checkpointing to a backup server is active (the normal
    /// state on a spot host).
    pub checkpointing: bool,
    /// Achieved/demanded checkpoint-stream ratio in `[0, 1]`; below 1.0
    /// the checkpointer back-pressures the guest (backup saturation,
    /// Figure 7's right side).
    pub checkpoint_health: f64,
    /// The VM is inside a lazy-restoration window (first-touch page faults
    /// served over the network; Figure 9).
    pub lazy_restoring: bool,
    /// Number of VMs concurrently lazy-restoring from the same backup
    /// server (bandwidth is partitioned equally among them, so the effect
    /// of additional concurrency is mild).
    pub concurrent_restores: usize,
}

impl PerfContext {
    /// Baseline: no checkpointing, no restoration.
    pub fn baseline() -> Self {
        PerfContext {
            checkpointing: false,
            checkpoint_health: 1.0,
            lazy_restoring: false,
            concurrent_restores: 0,
        }
    }

    /// Normal protected operation with a healthy backup.
    pub fn protected() -> Self {
        PerfContext {
            checkpointing: true,
            checkpoint_health: 1.0,
            lazy_restoring: false,
            concurrent_restores: 0,
        }
    }

    /// Protected operation at the given backup health.
    pub fn protected_with_health(health: f64) -> Self {
        PerfContext {
            checkpointing: true,
            checkpoint_health: health.clamp(0.0, 1.0),
            lazy_restoring: false,
            concurrent_restores: 0,
        }
    }

    /// A lazy-restoration window with `concurrent` VMs restoring together.
    pub fn lazy_restoring(concurrent: usize) -> Self {
        PerfContext {
            checkpointing: false,
            checkpoint_health: 1.0,
            lazy_restoring: true,
            concurrent_restores: concurrent.max(1),
        }
    }
}

/// A benchmark application model.
pub trait ApplicationModel {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// What the metric measures.
    fn metric_kind(&self) -> MetricKind;

    /// The workload's page-dirtying behavior.
    fn dirty_model(&self) -> DirtyModel;

    /// The scalar performance metric under `ctx`.
    fn perf(&self, ctx: &PerfContext) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_constructors() {
        let b = PerfContext::baseline();
        assert!(!b.checkpointing && !b.lazy_restoring);
        let p = PerfContext::protected();
        assert!(p.checkpointing && (p.checkpoint_health - 1.0).abs() < 1e-12);
        let h = PerfContext::protected_with_health(1.5);
        assert_eq!(h.checkpoint_health, 1.0, "health clamps to [0,1]");
        let r = PerfContext::lazy_restoring(0);
        assert_eq!(r.concurrent_restores, 1, "at least one restorer");
    }
}
