//! SPECjbb2005: a server-side Java throughput benchmark.
//!
//! The paper reports (§6.1, Figure 7):
//!
//! - ~**12 000 bops** baseline throughput on a medium nested VM;
//! - **no noticeable degradation** when continuous checkpointing turns on
//!   (unlike TPC-W: SPECjbb is throughput- rather than latency-bound);
//! - throughput falls once the backup saturates — by roughly 30% at
//!   50 VMs per backup server.

use spotcheck_nestedvm::memory::DirtyModel;

use crate::perf::{ApplicationModel, MetricKind, PerfContext};

/// The SPECjbb2005 model.
#[derive(Debug, Clone)]
pub struct SpecJbb {
    /// Baseline throughput, bops.
    pub base_bops: f64,
    /// Throughput multiplier while lazy-restoring (cold pages fault in).
    pub restore_factor: f64,
    /// Exponent shaping back-pressure: throughput scales as
    /// `health^exponent` past saturation.
    pub backpressure_exponent: f64,
}

impl Default for SpecJbb {
    fn default() -> Self {
        SpecJbb {
            base_bops: 12_000.0,
            restore_factor: 0.55,
            backpressure_exponent: 1.2,
        }
    }
}

impl ApplicationModel for SpecJbb {
    fn name(&self) -> &'static str {
        "SPECjbb2005"
    }

    fn metric_kind(&self) -> MetricKind {
        MetricKind::ThroughputBops
    }

    fn dirty_model(&self) -> DirtyModel {
        // More memory-intensive than TPC-W: ~820 distinct pages/s over a
        // ~400 MB (100k-page) hot set: a ~3.3 MB/s checkpoint stream.
        DirtyModel::new(100_000, 850.0, 0.02)
    }

    fn perf(&self, ctx: &PerfContext) -> f64 {
        spotcheck_simcore::metrics::add(1);
        if ctx.lazy_restoring {
            return self.base_bops * self.restore_factor;
        }
        if !ctx.checkpointing {
            return self.base_bops;
        }
        let health = ctx.checkpoint_health.clamp(0.01, 1.0);
        self.base_bops * health.powf(self.backpressure_exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_near_12000_bops() {
        let s = SpecJbb::default();
        assert_eq!(s.perf(&PerfContext::baseline()), 12_000.0);
        assert_eq!(s.name(), "SPECjbb2005");
    }

    #[test]
    fn checkpointing_alone_costs_nothing() {
        // Paper: "SpecJBB experiences no noticeable performance
        // degradation during normal operation".
        let s = SpecJbb::default();
        assert_eq!(s.perf(&PerfContext::protected()), 12_000.0);
    }

    #[test]
    fn saturation_cuts_throughput_by_about_a_quarter() {
        // Figure 7 at 50 VMs/backup: health = (125/50)/3.3 ~ 0.76.
        let s = SpecJbb::default();
        let t = s.perf(&PerfContext::protected_with_health(0.76));
        let drop = 1.0 - t / 12_000.0;
        assert!((0.15..0.40).contains(&drop), "drop={drop}");
    }

    #[test]
    fn restore_window_halves_throughput() {
        let s = SpecJbb::default();
        let t = s.perf(&PerfContext::lazy_restoring(1));
        assert!((0.4..0.7).contains(&(t / 12_000.0)));
    }

    #[test]
    fn health_monotonicity() {
        let s = SpecJbb::default();
        let a = s.perf(&PerfContext::protected_with_health(0.9));
        let b = s.perf(&PerfContext::protected_with_health(0.5));
        assert!(a > b);
    }
}
