//! TPC-W: an interactive multi-tier web application.
//!
//! The paper runs TPC-W's "ordering" mix against Tomcat 6 + MySQL 5 and
//! reports (§6.1, Figures 7 and 9):
//!
//! - baseline response time **29 ms**;
//! - **+15%** response time when continuous checkpointing turns on;
//! - a further ~**30%** increase once the backup server saturates
//!   (~50 VMs per backup);
//! - **60 ms** during a lazy restoration, with additional concurrent
//!   restorations barely mattering because the backup partitions
//!   bandwidth per VM.

use spotcheck_nestedvm::memory::DirtyModel;

use crate::perf::{ApplicationModel, MetricKind, PerfContext};

/// The TPC-W ordering-mix model.
#[derive(Debug, Clone)]
pub struct TpcW {
    /// Baseline mean response time, ms.
    pub base_ms: f64,
    /// Multiplier when continuous checkpointing is active.
    pub checkpoint_factor: f64,
    /// Response time during a (single) lazy restoration, ms.
    pub restore_ms: f64,
    /// Additional per-extra-concurrent-restore slowdown (mild: bandwidth
    /// is partitioned per VM).
    pub restore_concurrency_factor: f64,
    /// Exponent shaping how back-pressure translates to latency: response
    /// scales as `1 / health^exponent` past saturation.
    pub backpressure_exponent: f64,
}

impl Default for TpcW {
    fn default() -> Self {
        TpcW {
            base_ms: 29.0,
            checkpoint_factor: 1.15,
            restore_ms: 60.0,
            restore_concurrency_factor: 0.015,
            backpressure_exponent: 2.0,
        }
    }
}

impl ApplicationModel for TpcW {
    fn name(&self) -> &'static str {
        "TPC-W"
    }

    fn metric_kind(&self) -> MetricKind {
        MetricKind::ResponseTimeMs
    }

    fn dirty_model(&self) -> DirtyModel {
        // ~700 distinct pages/s over a ~200 MB (50k-page) hot set: a
        // ~2.9 MB/s checkpoint stream.
        DirtyModel::new(50_000, 700.0, 0.01)
    }

    fn perf(&self, ctx: &PerfContext) -> f64 {
        spotcheck_simcore::metrics::add(1);
        if ctx.lazy_restoring {
            // First-touch faults dominate; extra concurrent restores only
            // mildly extend queuing because bandwidth is partitioned.
            let extra = ctx.concurrent_restores.saturating_sub(1) as f64;
            return self.restore_ms * (1.0 + self.restore_concurrency_factor * extra);
        }
        if !ctx.checkpointing {
            return self.base_ms;
        }
        let health = ctx.checkpoint_health.clamp(0.01, 1.0);
        self.base_ms * self.checkpoint_factor / health.powf(self.backpressure_exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_29ms() {
        let t = TpcW::default();
        assert_eq!(t.perf(&PerfContext::baseline()), 29.0);
        assert_eq!(t.name(), "TPC-W");
    }

    #[test]
    fn checkpointing_adds_fifteen_percent() {
        // The "0" -> "1" step of Figure 7.
        let t = TpcW::default();
        let p = t.perf(&PerfContext::protected());
        assert!((p / 29.0 - 1.15).abs() < 1e-9, "p={p}");
    }

    #[test]
    fn saturation_adds_roughly_thirty_percent_more() {
        // Figure 7 at 50 VMs/backup: health = (125/50)/2.9 ~ 0.86.
        let t = TpcW::default();
        let healthy = t.perf(&PerfContext::protected());
        let saturated = t.perf(&PerfContext::protected_with_health(0.86));
        let increase = saturated / healthy - 1.0;
        assert!(
            (0.20..0.45).contains(&increase),
            "saturation increase {increase}"
        );
    }

    #[test]
    fn lazy_restore_doubles_response_time() {
        // Figure 9: 29 ms -> 60 ms during a single restoration.
        let t = TpcW::default();
        assert_eq!(t.perf(&PerfContext::lazy_restoring(1)), 60.0);
        // 10 concurrent restorations barely move it (bandwidth
        // partitioning).
        let ten = t.perf(&PerfContext::lazy_restoring(10));
        assert!(ten < 70.0, "ten={ten}");
        assert!(ten > 60.0);
    }

    #[test]
    fn worse_health_means_worse_latency() {
        let t = TpcW::default();
        let a = t.perf(&PerfContext::protected_with_health(0.9));
        let b = t.perf(&PerfContext::protected_with_health(0.6));
        assert!(b > a);
    }
}
