//! Page-cache write absorption.
//!
//! The paper tunes each backup server for write-heavy traffic: ext4 in
//! writeback mode, `noatime`, and high `dirty_ratio` /
//! `dirty_background_ratio` so the page cache "absorbs write storms" and
//! the I/O scheduler batches writes (§5). The model: incoming checkpoint
//! bytes land in RAM instantly up to the cache capacity and drain to disk
//! at the disk's write bandwidth; while the cache has headroom, ingest is
//! NIC-limited rather than disk-limited.

use spotcheck_simcore::time::SimDuration;

/// A dirty-page cache draining to disk.
#[derive(Debug, Clone)]
pub struct PageCache {
    capacity_bytes: f64,
    dirty_bytes: f64,
    drain_bps: f64,
}

impl PageCache {
    /// Creates a cache with `capacity_bytes` of absorbable dirty data
    /// draining at `drain_bps` (the disk write bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if parameters are not finite and positive.
    pub fn new(capacity_bytes: f64, drain_bps: f64) -> Self {
        assert!(
            capacity_bytes.is_finite() && capacity_bytes > 0.0,
            "cache capacity must be positive"
        );
        assert!(
            drain_bps.is_finite() && drain_bps > 0.0,
            "drain rate must be positive"
        );
        PageCache {
            capacity_bytes,
            dirty_bytes: 0.0,
            drain_bps,
        }
    }

    /// Bytes currently dirty in the cache.
    pub fn dirty_bytes(&self) -> f64 {
        self.dirty_bytes
    }

    /// Free absorbable headroom in bytes.
    pub fn headroom(&self) -> f64 {
        (self.capacity_bytes - self.dirty_bytes).max(0.0)
    }

    /// Returns true when the cache is full and ingest is disk-limited.
    pub fn is_saturated(&self) -> bool {
        self.headroom() <= 0.0
    }

    /// Drains to disk for `dt`.
    pub fn advance(&mut self, dt: SimDuration) {
        self.dirty_bytes = (self.dirty_bytes - self.drain_bps * dt.as_secs_f64()).max(0.0);
    }

    /// Absorbs an ingest of `bytes` arriving over `dt`; returns the ingest
    /// rate cap (bytes/sec) the cache imposed during that interval.
    ///
    /// If the burst fits in headroom plus concurrent drain, ingest is
    /// uncapped (`f64::INFINITY`); otherwise ingest is limited to drain
    /// rate plus the headroom amortized over the interval.
    pub fn absorb(&mut self, bytes: f64, dt: SimDuration) -> f64 {
        let drained = self.drain_bps * dt.as_secs_f64();
        let cap = if bytes <= self.headroom() + drained {
            f64::INFINITY
        } else if dt.is_zero() {
            self.drain_bps
        } else {
            self.drain_bps + self.headroom() / dt.as_secs_f64()
        };
        self.dirty_bytes = (self.dirty_bytes + bytes - drained)
            .clamp(0.0, self.capacity_bytes);
        cap
    }

    /// The sustainable ingest rate cap right now: infinite while the cache
    /// has headroom, the disk drain rate once saturated.
    pub fn ingest_cap_bps(&self) -> f64 {
        if self.is_saturated() {
            self.drain_bps
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bursts_are_absorbed_at_full_speed() {
        let mut c = PageCache::new(1e9, 100e6);
        let cap = c.absorb(50e6, SimDuration::from_secs(1));
        assert!(cap.is_infinite());
        // 50 MB in, 100 MB drain capacity -> cache stays empty.
        assert_eq!(c.dirty_bytes(), 0.0);
    }

    #[test]
    fn sustained_overload_fills_then_limits() {
        let mut c = PageCache::new(1e9, 100e6);
        // 300 MB/s ingest vs 100 MB/s drain: +200 MB/s of dirty.
        for _ in 0..4 {
            c.absorb(300e6, SimDuration::from_secs(1));
        }
        assert!((c.dirty_bytes() - 800e6).abs() < 1.0);
        assert!(!c.is_saturated());
        // Next second exceeds capacity: the cap reflects drain + headroom.
        let cap = c.absorb(400e6, SimDuration::from_secs(1));
        assert!((cap - (100e6 + 200e6)).abs() < 1.0, "cap={cap}");
        assert!(c.is_saturated());
        assert_eq!(c.ingest_cap_bps(), 100e6);
    }

    #[test]
    fn advance_drains() {
        let mut c = PageCache::new(1e9, 100e6);
        c.absorb(500e6, SimDuration::ZERO);
        assert!(c.dirty_bytes() > 0.0);
        c.advance(SimDuration::from_secs(5));
        assert_eq!(c.dirty_bytes(), 0.0);
        assert_eq!(c.ingest_cap_bps(), f64::INFINITY);
    }

    #[test]
    fn zero_dt_burst_uses_drain_cap() {
        let mut c = PageCache::new(1e6, 100e6);
        let cap = c.absorb(10e6, SimDuration::ZERO);
        assert_eq!(cap, 100e6);
        assert!(c.is_saturated());
    }
}
