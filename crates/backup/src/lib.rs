//! # spotcheck-backup
//!
//! Backup-server substrate for the SpotCheck reproduction: the servers
//! that hold nested-VM memory checkpoints for bounded-time migration
//! (paper §3.2, §5). Provides:
//!
//! - [`server`] — a backup server with full-duplex NIC and disk channels,
//!   checkpoint stores, fadvise-dependent read bandwidth, and the
//!   $0.28/hr-amortized-over-40-VMs economics of §6.1;
//! - [`cache`] — write-storm absorption by the page cache (the
//!   `dirty_ratio` tuning of §5);
//! - [`pool`] — the round-robin, provision-on-full backup pool of §4.2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod pool;
pub mod server;

pub use cache::PageCache;
pub use pool::{BackupPool, BackupServerId};
pub use server::{BackupError, BackupLinks, BackupServer, BackupServerConfig, CheckpointStore};
