//! The backup server.
//!
//! A backup server (the paper uses `m3.xlarge`, $0.28/hr) stores the
//! checkpointed memory images of the nested VMs assigned to it, receives
//! their continuous dirty-page streams, and serves reads during
//! restorations. Its economics drive SpotCheck's overhead: at 40 VMs per
//! backup server the amortized cost is $0.007/VM-hr — "less than one cent
//! per VM" (§6.1).

use std::collections::BTreeMap;

use spotcheck_simcore::bitset::BitSet;
use spotcheck_simcore::fluid::{LinkId, Network};
use spotcheck_nestedvm::vm::NestedVmId;

use crate::cache::PageCache;

/// Errors from backup-server management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackupError {
    /// The server already protects its maximum number of VMs.
    CapacityFull {
        /// The admission limit.
        max_vms: usize,
    },
    /// The VM is not assigned to this server.
    UnknownVm(NestedVmId),
    /// The VM is already assigned to this server.
    AlreadyAssigned(NestedVmId),
    /// No server with this id exists in the pool (never provisioned, or
    /// already failed/retired).
    UnknownServer(u64),
}

impl std::fmt::Display for BackupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackupError::CapacityFull { max_vms } => {
                write!(f, "backup server full ({max_vms} VMs)")
            }
            BackupError::UnknownVm(id) => write!(f, "{id} is not backed up by this server"),
            BackupError::AlreadyAssigned(id) => write!(f, "{id} is already assigned"),
            BackupError::UnknownServer(id) => write!(f, "backup server bkp-{id:04} does not exist"),
        }
    }
}

impl std::error::Error for BackupError {}

/// Hardware/OS parameters of a backup server.
#[derive(Debug, Clone)]
pub struct BackupServerConfig {
    /// NIC bandwidth, each direction, bytes/sec. (m3.xlarge: ~1 Gbit/s
    /// sustained = 125 MB/s.)
    pub nic_bps: f64,
    /// Disk write bandwidth, bytes/sec (SSD + EBS mix, writeback mode).
    pub disk_write_bps: f64,
    /// Sequential disk read bandwidth (stop-and-copy restores).
    pub disk_read_seq_bps: f64,
    /// Random disk read bandwidth *without* the fadvise hints (the
    /// unoptimized lazy restore of Figure 8b).
    pub disk_read_rand_bps: f64,
    /// Random disk read bandwidth *with* `fadvise(WILLNEED | RANDOM)`
    /// prefetch hints (SpotCheck's optimized lazy restore, §5-§6.1).
    pub disk_read_rand_fadvise_bps: f64,
    /// Page-cache capacity for absorbing write storms, bytes.
    pub cache_bytes: f64,
    /// Admission limit: SpotCheck assigns at most 35-40 VMs per backup
    /// server to keep checkpointing off the saturation knee (§6.1).
    pub max_vms: usize,
    /// $/hr of the backing instance (m3.xlarge: $0.28 in us-east-1).
    pub hourly_price: f64,
}

impl Default for BackupServerConfig {
    fn default() -> Self {
        BackupServerConfig {
            nic_bps: 125e6,
            disk_write_bps: 180e6,
            disk_read_seq_bps: 180e6,
            disk_read_rand_bps: 35e6,
            disk_read_rand_fadvise_bps: 140e6,
            cache_bytes: 8e9,
            max_vms: 40,
            hourly_price: 0.28,
        }
    }
}

impl BackupServerConfig {
    /// Effective read bandwidth for a restore, depending on access pattern
    /// and whether the fadvise optimization is enabled.
    pub fn read_bps(&self, sequential: bool, fadvise: bool) -> f64 {
        if sequential {
            self.disk_read_seq_bps
        } else if fadvise {
            self.disk_read_rand_fadvise_bps
        } else {
            self.disk_read_rand_bps
        }
    }
}

/// The checkpointed state of one VM held on a backup server.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    /// The protected VM.
    pub vm: NestedVmId,
    /// Total pages in the VM's image.
    pub total_pages: usize,
    /// Pages present (committed at least once) on the backup server.
    pub present: BitSet,
    /// Bytes received from this VM's checkpoint stream, lifetime.
    pub bytes_received: u64,
    /// Number of checkpoint commits (epochs) applied.
    pub commits: u64,
}

impl CheckpointStore {
    fn new(vm: NestedVmId, total_pages: usize) -> Self {
        CheckpointStore {
            vm,
            total_pages,
            present: BitSet::new(total_pages),
            bytes_received: 0,
            commits: 0,
        }
    }

    /// Applies a committed checkpoint epoch of `pages` pages.
    pub fn commit_pages(&mut self, pages: &BitSet) {
        self.present.union_with(pages);
        self.bytes_received += pages.count_ones() as u64 * spotcheck_nestedvm::memory::PAGE_SIZE;
        self.commits += 1;
    }

    /// Applies a committed epoch described only by a page count (fluid
    /// model; assumes commits cover not-yet-present pages first).
    pub fn commit_count(&mut self, pages: usize) {
        let mut remaining = pages;
        let mut idx = 0;
        while remaining > 0 {
            match self.present.next_zero(idx) {
                Some(i) => {
                    self.present.set(i);
                    idx = i + 1;
                    remaining -= 1;
                }
                None => break,
            }
        }
        self.bytes_received += pages as u64 * spotcheck_nestedvm::memory::PAGE_SIZE;
        self.commits += 1;
    }

    /// True when every page of the image is present.
    pub fn is_complete(&self) -> bool {
        self.present.count_ones() == self.total_pages
    }

    /// Fraction of the image present.
    pub fn completeness(&self) -> f64 {
        if self.total_pages == 0 {
            1.0
        } else {
            self.present.count_ones() as f64 / self.total_pages as f64
        }
    }
}

/// Link handles into a backup server's [`Network`].
#[derive(Debug, Clone, Copy)]
pub struct BackupLinks {
    /// NIC receive direction (checkpoint ingest).
    pub nic_rx: LinkId,
    /// NIC transmit direction (restore egress).
    pub nic_tx: LinkId,
    /// Disk write channel.
    pub disk_write: LinkId,
    /// Disk read channel (capacity depends on access pattern; set by the
    /// scenario via [`Network::set_capacity`]).
    pub disk_read: LinkId,
}

/// A backup server instance.
#[derive(Debug, Clone)]
pub struct BackupServer {
    config: BackupServerConfig,
    stores: BTreeMap<NestedVmId, CheckpointStore>,
    cache: PageCache,
}

impl BackupServer {
    /// Creates a backup server.
    pub fn new(config: BackupServerConfig) -> Self {
        let cache = PageCache::new(config.cache_bytes, config.disk_write_bps);
        BackupServer {
            config,
            stores: BTreeMap::new(),
            cache,
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &BackupServerConfig {
        &self.config
    }

    /// Returns the write-absorption cache.
    pub fn cache_mut(&mut self) -> &mut PageCache {
        &mut self.cache
    }

    /// Number of VMs currently protected.
    pub fn vm_count(&self) -> usize {
        self.stores.len()
    }

    /// Free protection slots.
    pub fn free_slots(&self) -> usize {
        self.config.max_vms.saturating_sub(self.vm_count())
    }

    /// Assigns a VM with `total_pages` of image to this server.
    ///
    /// # Errors
    ///
    /// Fails if the server is full or the VM is already assigned.
    pub fn assign(&mut self, vm: NestedVmId, total_pages: usize) -> Result<(), BackupError> {
        if self.stores.contains_key(&vm) {
            return Err(BackupError::AlreadyAssigned(vm));
        }
        if self.vm_count() >= self.config.max_vms {
            return Err(BackupError::CapacityFull {
                max_vms: self.config.max_vms,
            });
        }
        self.stores.insert(vm, CheckpointStore::new(vm, total_pages));
        Ok(())
    }

    /// Releases a VM's protection, returning its store (e.g. after it
    /// migrated to an on-demand server that needs no backup).
    ///
    /// # Errors
    ///
    /// Fails if the VM is not assigned.
    pub fn release(&mut self, vm: NestedVmId) -> Result<CheckpointStore, BackupError> {
        self.stores.remove(&vm).ok_or(BackupError::UnknownVm(vm))
    }

    /// Returns a VM's checkpoint store.
    pub fn store(&self, vm: NestedVmId) -> Result<&CheckpointStore, BackupError> {
        self.stores.get(&vm).ok_or(BackupError::UnknownVm(vm))
    }

    /// Returns a VM's checkpoint store mutably.
    pub fn store_mut(&mut self, vm: NestedVmId) -> Result<&mut CheckpointStore, BackupError> {
        self.stores.get_mut(&vm).ok_or(BackupError::UnknownVm(vm))
    }

    /// Iterates over protected VMs.
    pub fn protected_vms(&self) -> impl Iterator<Item = NestedVmId> + '_ {
        self.stores.keys().copied()
    }

    /// Builds the fluid-model network of this server: full-duplex NIC plus
    /// independent disk read/write channels. The disk-read capacity is
    /// initialized to the sequential rate; restore scenarios adjust it for
    /// access pattern via [`BackupLinks::disk_read`].
    pub fn build_network(&self) -> (Network, BackupLinks) {
        let mut net = Network::new();
        let nic_rx = net.add_link(self.config.nic_bps);
        let nic_tx = net.add_link(self.config.nic_bps);
        let disk_write = net.add_link(self.config.disk_write_bps);
        let disk_read = net.add_link(self.config.disk_read_seq_bps);
        (
            net,
            BackupLinks {
                nic_rx,
                nic_tx,
                disk_write,
                disk_read,
            },
        )
    }

    /// The amortized $/hr cost of protection per VM at current occupancy,
    /// or the full price if empty.
    pub fn amortized_cost_per_vm(&self) -> f64 {
        if self.stores.is_empty() {
            self.config.hourly_price
        } else {
            self.config.hourly_price / self.stores.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortized_cost_matches_paper_at_forty_vms() {
        let mut s = BackupServer::new(BackupServerConfig::default());
        for i in 0..40 {
            s.assign(NestedVmId(i), 1_000).unwrap();
        }
        // $0.28 / 40 = $0.007 — "less than one cent per VM".
        assert!((s.amortized_cost_per_vm() - 0.007).abs() < 1e-12);
        assert_eq!(s.free_slots(), 0);
        assert_eq!(
            s.assign(NestedVmId(99), 1_000).unwrap_err(),
            BackupError::CapacityFull { max_vms: 40 }
        );
    }

    #[test]
    fn assign_release_roundtrip() {
        let mut s = BackupServer::new(BackupServerConfig::default());
        s.assign(NestedVmId(1), 100).unwrap();
        assert_eq!(
            s.assign(NestedVmId(1), 100).unwrap_err(),
            BackupError::AlreadyAssigned(NestedVmId(1))
        );
        let store = s.release(NestedVmId(1)).unwrap();
        assert_eq!(store.total_pages, 100);
        assert!(s.release(NestedVmId(1)).is_err());
        assert!(s.store(NestedVmId(1)).is_err());
    }

    #[test]
    fn checkpoint_store_tracks_completeness() {
        let mut s = BackupServer::new(BackupServerConfig::default());
        s.assign(NestedVmId(1), 100).unwrap();
        let store = s.store_mut(NestedVmId(1)).unwrap();
        assert_eq!(store.completeness(), 0.0);
        store.commit_count(60);
        assert_eq!(store.completeness(), 0.6);
        assert!(!store.is_complete());
        store.commit_count(40);
        assert!(store.is_complete());
        assert_eq!(store.commits, 2);
        // Further commits (re-dirtied pages) don't overflow presence.
        store.commit_count(10);
        assert!(store.is_complete());
    }

    #[test]
    fn commit_pages_by_bitset() {
        let mut s = BackupServer::new(BackupServerConfig::default());
        s.assign(NestedVmId(1), 64).unwrap();
        let mut pages = BitSet::new(64);
        pages.set(0);
        pages.set(63);
        let store = s.store_mut(NestedVmId(1)).unwrap();
        store.commit_pages(&pages);
        assert_eq!(store.present.count_ones(), 2);
        assert_eq!(
            store.bytes_received,
            2 * spotcheck_nestedvm::memory::PAGE_SIZE
        );
    }

    #[test]
    fn read_bandwidth_depends_on_pattern_and_fadvise() {
        let c = BackupServerConfig::default();
        // The Figure 8 phenomenon: random reads without hints are much
        // slower than sequential; fadvise recovers most of it.
        assert!(c.read_bps(false, false) < c.read_bps(true, false) / 3.0);
        assert!(c.read_bps(false, true) > 3.0 * c.read_bps(false, false));
        assert!(c.read_bps(false, true) <= c.read_bps(true, true));
    }

    #[test]
    fn network_has_four_links() {
        let s = BackupServer::new(BackupServerConfig::default());
        let (net, links) = s.build_network();
        assert_eq!(net.len(), 4);
        assert_eq!(net.capacity(links.nic_rx), 125e6);
        assert_eq!(net.capacity(links.disk_read), 180e6);
    }
}
