//! The backup-server pool.
//!
//! SpotCheck "employs a simple round-robin policy to map nested VMs within
//! each pool across the set of backup servers. Once every backup server
//! becomes fully utilized, SpotCheck provisions a native VM from the IaaS
//! platform to serve as a new backup server" (§4.2). The pool here
//! implements that policy mechanically; the risk-aware spreading of VMs
//! *from the same spot pool* across distinct backup servers lives in the
//! controller, which passes placement constraints via `avoid`.

use std::collections::BTreeSet;

use spotcheck_nestedvm::vm::NestedVmId;
use spotcheck_simcore::slab::IdMap;

use crate::server::{BackupError, BackupServer, BackupServerConfig};

/// Identifies a backup server within the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BackupServerId(pub u64);

impl std::fmt::Display for BackupServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bkp-{:04}", self.0)
    }
}

// Allocated monotonically by the pool; indexes dense
// `spotcheck_simcore::slab::IdMap` storage directly.
impl spotcheck_simcore::slab::DenseKey for BackupServerId {
    fn dense_index(self) -> usize {
        self.0 as usize
    }
    fn from_dense_index(index: usize) -> Self {
        BackupServerId(index as u64)
    }
}

/// A growable pool of backup servers with round-robin VM assignment.
#[derive(Debug, Clone)]
pub struct BackupPool {
    config: BackupServerConfig,
    servers: IdMap<BackupServerId, BackupServer>,
    assignment: IdMap<NestedVmId, BackupServerId>,
    /// Live server ids in ascending order (ids are allocated monotonically,
    /// so provisioning appends; only `fail_server` removes mid-vector).
    ids: Vec<BackupServerId>,
    /// Servers with at least one free slot — the only ones `assign` can
    /// choose — kept in sync at every capacity change.
    open: BTreeSet<BackupServerId>,
    next_id: u64,
    cursor: u64,
    provisioned: u64,
}

impl BackupPool {
    /// Creates an empty pool; servers are provisioned on demand.
    pub fn new(config: BackupServerConfig) -> Self {
        BackupPool {
            config,
            servers: IdMap::new(),
            assignment: IdMap::new(),
            ids: Vec::new(),
            open: BTreeSet::new(),
            next_id: 0,
            cursor: 0,
            provisioned: 0,
        }
    }

    /// Number of servers currently provisioned.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Total servers ever provisioned (for cost accounting).
    pub fn provisioned_total(&self) -> u64 {
        self.provisioned
    }

    /// Number of VMs currently protected across the pool.
    pub fn protected_count(&self) -> usize {
        self.assignment.len()
    }

    /// Returns the server protecting `vm`, if any.
    pub fn server_of(&self, vm: NestedVmId) -> Option<BackupServerId> {
        self.assignment.get(&vm).copied()
    }

    /// Returns a server by id.
    pub fn server(&self, id: BackupServerId) -> Option<&BackupServer> {
        self.servers.get(&id)
    }

    /// Returns a server by id, mutably.
    pub fn server_mut(&mut self, id: BackupServerId) -> Option<&mut BackupServer> {
        self.servers.get_mut(&id)
    }

    /// Iterates over (id, server) pairs.
    pub fn servers(&self) -> impl Iterator<Item = (BackupServerId, &BackupServer)> {
        self.servers.iter()
    }

    fn provision(&mut self) -> BackupServerId {
        let id = BackupServerId(self.next_id);
        self.next_id += 1;
        self.provisioned += 1;
        self.servers.insert(id, BackupServer::new(self.config.clone()));
        self.ids.push(id); // ids are monotonic, so the vec stays sorted
        self.note_capacity(id);
        id
    }

    /// Syncs `open` membership with the server's current free capacity.
    fn note_capacity(&mut self, id: BackupServerId) {
        let has_room = self
            .servers
            .get(&id)
            .map(|s| s.free_slots() > 0)
            .unwrap_or(false);
        if has_room {
            self.open.insert(id);
        } else {
            self.open.remove(&id);
        }
    }

    /// Assigns a VM of `total_pages` to a backup server, round-robin among
    /// servers with free capacity while skipping servers for which `avoid`
    /// returns true (the controller passes the servers already protecting
    /// VMs of the same spot pool, to spread revocation-storm load).
    /// Provisions a new server when none qualifies.
    ///
    /// The round-robin pick walks only the servers with free capacity, in
    /// circular id order from the cursor — the same server the old
    /// full-vector scan chose, without touching full or dead servers.
    ///
    /// # Errors
    ///
    /// Fails only if the VM is already protected.
    pub fn assign(
        &mut self,
        vm: NestedVmId,
        total_pages: usize,
        avoid: impl Fn(BackupServerId) -> bool,
    ) -> Result<BackupServerId, BackupError> {
        if self.assignment.contains_key(&vm) {
            return Err(BackupError::AlreadyAssigned(vm));
        }
        let n = self.ids.len() as u64;
        let mut chosen = None;
        if n > 0 {
            let start_rank = (self.cursor % n) as usize;
            let start = self.ids[start_rank];
            let pick = self
                .open
                .range(start..)
                .chain(self.open.range(..start))
                .copied()
                .find(|&id| !avoid(id));
            if let Some(id) = pick {
                let rank = self
                    .ids
                    .binary_search(&id)
                    .expect("open server is live") as u64;
                let k = (rank + n - start_rank as u64) % n;
                self.cursor = self.cursor.wrapping_add(k + 1);
                chosen = Some(id);
            }
        }
        // When every server with space is avoided: the paper provisions new
        // servers once existing ones are fully utilized; avoidance is a
        // soft preference we honor by provisioning.
        let id = match chosen {
            Some(id) => id,
            None => self.provision(),
        };
        self.servers
            .get_mut(&id)
            .ok_or(BackupError::UnknownServer(id.0))?
            .assign(vm, total_pages)?;
        self.note_capacity(id);
        self.assignment.insert(vm, id);
        Ok(id)
    }

    /// Provisions a fresh server and assigns the VM to it directly,
    /// bypassing the round-robin scan. Exactly equivalent to [`assign`]
    /// when the caller knows every existing server would be avoided (the
    /// scan then chooses nothing and leaves the cursor untouched); callers
    /// use this to skip the scan in that case.
    ///
    /// [`assign`]: BackupPool::assign
    ///
    /// # Errors
    ///
    /// Fails only if the VM is already protected.
    pub fn assign_fresh(
        &mut self,
        vm: NestedVmId,
        total_pages: usize,
    ) -> Result<BackupServerId, BackupError> {
        if self.assignment.contains_key(&vm) {
            return Err(BackupError::AlreadyAssigned(vm));
        }
        let id = self.provision();
        self.servers
            .get_mut(&id)
            .ok_or(BackupError::UnknownServer(id.0))?
            .assign(vm, total_pages)?;
        self.note_capacity(id);
        self.assignment.insert(vm, id);
        Ok(id)
    }

    /// Releases a VM's protection.
    ///
    /// # Errors
    ///
    /// Fails if the VM is not protected.
    pub fn release(&mut self, vm: NestedVmId) -> Result<BackupServerId, BackupError> {
        let id = self
            .assignment
            .remove(&vm)
            .ok_or(BackupError::UnknownVm(vm))?;
        // A failed server's assignments were already swept by `fail_server`,
        // so a live assignment always points at a live server; tolerate an
        // inconsistent map rather than panicking mid-simulation.
        self.servers
            .get_mut(&id)
            .ok_or(BackupError::UnknownServer(id.0))?
            .release(vm)?;
        self.note_capacity(id);
        Ok(id)
    }

    /// Removes a server from the pool (crash-stop: its stored checkpoints
    /// are gone) and returns the VMs it was protecting, now orphaned. The
    /// caller is responsible for re-replicating their state elsewhere.
    ///
    /// # Errors
    ///
    /// Fails if no such server exists (e.g. it already failed).
    pub fn fail_server(&mut self, id: BackupServerId) -> Result<Vec<NestedVmId>, BackupError> {
        let server = self
            .servers
            .remove(&id)
            .ok_or(BackupError::UnknownServer(id.0))?;
        if let Ok(pos) = self.ids.binary_search(&id) {
            self.ids.remove(pos);
        }
        self.open.remove(&id);
        let orphans: Vec<NestedVmId> = server.protected_vms().collect();
        for vm in &orphans {
            self.assignment.remove(vm);
        }
        Ok(orphans)
    }

    /// Ids of the currently live servers, in ascending order (used to map
    /// fault-plan ordinals onto concrete servers).
    pub fn server_ids(&self) -> Vec<BackupServerId> {
        self.ids.clone()
    }

    /// The pool's current total $/hr cost.
    pub fn hourly_cost(&self) -> f64 {
        self.servers.len() as f64 * self.config.hourly_price
    }

    /// The amortized backup cost per protected VM, $/hr; the full pool cost
    /// if nothing is protected.
    pub fn amortized_cost_per_vm(&self) -> f64 {
        if self.assignment.is_empty() {
            self.hourly_cost()
        } else {
            self.hourly_cost() / self.assignment.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> BackupPool {
        BackupPool::new(BackupServerConfig {
            max_vms: 4,
            ..BackupServerConfig::default()
        })
    }

    #[test]
    fn provisions_on_demand_and_round_robins() {
        let mut p = pool();
        assert_eq!(p.server_count(), 0);
        let s1 = p.assign(NestedVmId(0), 100, |_| false).unwrap();
        assert_eq!(p.server_count(), 1);
        // Fill the first server.
        for i in 1..4 {
            assert_eq!(p.assign(NestedVmId(i), 100, |_| false).unwrap(), s1);
        }
        // The fifth VM forces a new server.
        let s2 = p.assign(NestedVmId(4), 100, |_| false).unwrap();
        assert_ne!(s1, s2);
        assert_eq!(p.server_count(), 2);
        assert_eq!(p.protected_count(), 5);
        assert_eq!(p.provisioned_total(), 2);
    }

    #[test]
    fn avoid_spreads_same_pool_vms() {
        let mut p = pool();
        let s1 = p.assign(NestedVmId(0), 100, |_| false).unwrap();
        // Same-spot-pool sibling avoids s1 -> new server despite free slots.
        let s2 = p.assign(NestedVmId(1), 100, |id| id == s1).unwrap();
        assert_ne!(s1, s2);
        // A third VM with no constraint reuses capacity round-robin.
        let s3 = p.assign(NestedVmId(2), 100, |_| false).unwrap();
        assert!(s3 == s1 || s3 == s2);
    }

    #[test]
    fn release_frees_capacity() {
        let mut p = pool();
        let s1 = p.assign(NestedVmId(0), 100, |_| false).unwrap();
        assert_eq!(p.release(NestedVmId(0)).unwrap(), s1);
        assert_eq!(p.protected_count(), 0);
        assert!(p.release(NestedVmId(0)).is_err());
        assert_eq!(p.server(s1).unwrap().vm_count(), 0);
    }

    #[test]
    fn duplicate_assignment_rejected() {
        let mut p = pool();
        p.assign(NestedVmId(0), 100, |_| false).unwrap();
        assert_eq!(
            p.assign(NestedVmId(0), 100, |_| false).unwrap_err(),
            BackupError::AlreadyAssigned(NestedVmId(0))
        );
    }

    #[test]
    fn cost_amortizes_over_protected_vms() {
        let mut p = pool();
        for i in 0..4 {
            p.assign(NestedVmId(i), 100, |_| false).unwrap();
        }
        assert!((p.hourly_cost() - 0.28).abs() < 1e-12);
        assert!((p.amortized_cost_per_vm() - 0.07).abs() < 1e-12);
    }

    #[test]
    fn fail_server_orphans_its_vms() {
        let mut p = pool();
        let s1 = p.assign(NestedVmId(0), 100, |_| false).unwrap();
        let s2 = p.assign(NestedVmId(1), 100, |id| id == s1).unwrap();
        let mut orphans = p.fail_server(s1).unwrap();
        orphans.sort();
        assert_eq!(orphans, vec![NestedVmId(0)]);
        assert_eq!(p.server_count(), 1);
        assert_eq!(p.server_of(NestedVmId(0)), None);
        assert_eq!(p.server_of(NestedVmId(1)), Some(s2));
        // Double failure is a typed error, not a panic.
        assert_eq!(
            p.fail_server(s1).unwrap_err(),
            BackupError::UnknownServer(s1.0)
        );
        // The orphan can be re-assigned (re-replication path); with s1 gone
        // the surviving server takes it round-robin.
        let s3 = p.assign(NestedVmId(0), 100, |_| false).unwrap();
        assert_eq!(p.server_of(NestedVmId(0)), Some(s3));
        assert_eq!(s3, s2);
        assert_eq!(p.server_ids(), vec![s2]);
    }

    #[test]
    fn server_lookup_roundtrip() {
        let mut p = pool();
        let s = p.assign(NestedVmId(0), 100, |_| false).unwrap();
        assert_eq!(p.server_of(NestedVmId(0)), Some(s));
        assert_eq!(p.server_of(NestedVmId(9)), None);
        assert!(p.server(s).is_some());
        assert_eq!(p.servers().count(), 1);
        assert_eq!(s.to_string(), "bkp-0000");
    }
}
