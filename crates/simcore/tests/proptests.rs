//! Property-based tests for the simulation core.

use proptest::prelude::*;
use spotcheck_simcore::bitset::BitSet;
use spotcheck_simcore::fluid::{max_min_rates, FlowSpec, Network};
use spotcheck_simcore::queue::EventQueue;
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::stats::{Ecdf, Samples};
use spotcheck_simcore::time::{SimDuration, SimTime};

proptest! {
    /// Popping the queue always yields events in nondecreasing time order,
    /// FIFO among equal times.
    #[test]
    fn queue_pops_sorted_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated among ties");
            }
        }
        prop_assert_eq!(popped.len(), times.len());
    }

    /// The bitset's cached popcount always matches a recount.
    #[test]
    fn bitset_count_is_consistent(ops in proptest::collection::vec((0usize..256, any::<bool>()), 0..300)) {
        let mut s = BitSet::new(256);
        let mut model = std::collections::BTreeSet::new();
        for (idx, set) in ops {
            if set {
                s.set(idx);
                model.insert(idx);
            } else {
                s.clear(idx);
                model.remove(&idx);
            }
        }
        prop_assert_eq!(s.count_ones(), model.len());
        let ones: Vec<usize> = s.iter_ones().collect();
        let expect: Vec<usize> = model.into_iter().collect();
        prop_assert_eq!(ones, expect);
    }

    /// Max-min fair rates never exceed caps and never oversubscribe a link.
    #[test]
    fn max_min_rates_feasible(
        cap in 1.0f64..1e9,
        sizes in proptest::collection::vec(1.0f64..1e8, 1..20),
        flow_caps in proptest::collection::vec(proptest::option::of(1.0f64..1e8), 1..20),
    ) {
        let mut net = Network::new();
        let l = net.add_link(cap);
        let flows: Vec<FlowSpec> = sizes
            .iter()
            .zip(flow_caps.iter().cycle())
            .map(|(&bytes, &fc)| {
                let f = FlowSpec::new(vec![l], bytes);
                match fc {
                    Some(c) => f.with_cap(c),
                    None => f,
                }
            })
            .collect();
        let rates = max_min_rates(&net, &flows);
        let total: f64 = rates.iter().sum();
        prop_assert!(total <= cap * (1.0 + 1e-6), "oversubscribed: {} > {}", total, cap);
        for (r, f) in rates.iter().zip(&flows) {
            prop_assert!(*r >= 0.0);
            if let Some(c) = f.rate_cap_bps {
                prop_assert!(*r <= c * (1.0 + 1e-9), "cap violated: {} > {}", r, c);
            }
        }
    }

    /// Max-min fairness is work-conserving on a single link: either the link
    /// is (nearly) full or every flow is at its cap.
    #[test]
    fn max_min_rates_work_conserving(
        cap in 1.0f64..1e9,
        flow_caps in proptest::collection::vec(1.0f64..1e8, 1..20),
    ) {
        let mut net = Network::new();
        let l = net.add_link(cap);
        let flows: Vec<FlowSpec> = flow_caps
            .iter()
            .map(|&c| FlowSpec::new(vec![l], 1.0).with_cap(c))
            .collect();
        let rates = max_min_rates(&net, &flows);
        let total: f64 = rates.iter().sum();
        let all_capped = rates
            .iter()
            .zip(&flow_caps)
            .all(|(r, c)| (r - c).abs() <= c * 1e-6);
        prop_assert!(
            total >= cap * (1.0 - 1e-6) || all_capped,
            "not work conserving: total={} cap={} rates={:?}",
            total, cap, rates
        );
    }

    /// ECDF is monotone, hits 0 below the minimum and 1 at/above the maximum.
    #[test]
    fn ecdf_properties(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let e = Ecdf::new(values.clone());
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(e.eval(lo - 1.0), 0.0);
        prop_assert_eq!(e.eval(hi), 1.0);
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = lo + (hi - lo) * i as f64 / 20.0;
            let fx = e.eval(x);
            prop_assert!(fx >= prev);
            prev = fx;
        }
    }

    /// Sample quantiles are bounded by min/max and ordered in p.
    #[test]
    fn samples_quantiles_ordered(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut s = Samples::from_values(values);
        let q25 = s.quantile(0.25).unwrap();
        let q50 = s.quantile(0.5).unwrap();
        let q75 = s.quantile(0.75).unwrap();
        prop_assert!(s.min().unwrap() <= q25);
        prop_assert!(q25 <= q50 && q50 <= q75);
        prop_assert!(q75 <= s.max().unwrap());
    }

    /// A resampled step series always reports values the series contains.
    #[test]
    fn step_series_resample_values_exist(
        raw in proptest::collection::vec((0u64..10_000, -100.0f64..100.0), 1..50),
    ) {
        let mut pts: Vec<(u64, f64)> = raw;
        pts.sort_by_key(|(t, _)| *t);
        pts.dedup_by_key(|(t, _)| *t);
        let series = StepSeries::from_points(
            pts.iter().map(|&(t, v)| (SimTime::from_micros(t), v)).collect(),
        );
        let xs = series.resample(
            SimTime::ZERO,
            SimTime::from_micros(10_000),
            SimDuration::from_micros(500),
        );
        let allowed: Vec<f64> = pts.iter().map(|&(_, v)| v).collect();
        for x in xs {
            prop_assert!(allowed.iter().any(|&v| v == x));
        }
    }

    /// Forked RNG streams are reproducible.
    #[test]
    fn rng_fork_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let parent = SimRng::seed(seed);
        let mut a = parent.fork(stream);
        let mut b = parent.fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(rand::RngCore::next_u64(&mut a), rand::RngCore::next_u64(&mut b));
        }
    }
}
