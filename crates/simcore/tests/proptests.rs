//! Randomized invariant tests for the simulation core.
//!
//! Inputs are generated from seeded [`SimRng`] streams (the workspace has no
//! external property-testing dependency), so every case is reproducible from
//! the iteration number printed on failure.

use spotcheck_simcore::bitset::BitSet;
use spotcheck_simcore::fluid::{max_min_rates, FlowSpec, Network};
use spotcheck_simcore::queue::{EventQueue, QueueBackend};
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::stats::{Ecdf, Samples};
use spotcheck_simcore::time::{SimDuration, SimTime};

const CASES: u64 = 64;

fn f64_in(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

/// Popping the queue always yields events in nondecreasing time order,
/// FIFO among equal times.
#[test]
fn queue_pops_sorted_stable() {
    let mut rng = SimRng::seed(0xA11CE);
    for case in 0..CASES {
        let n = rng.gen_range(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "case {case}: out of order");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "case {case}: FIFO violated among ties");
            }
        }
        assert_eq!(popped.len(), times.len(), "case {case}");
    }
}

/// The heap and timing-wheel backends pop identical `(time, payload)`
/// sequences over randomized push/pop interleavings — same-instant FIFO
/// ties, engine-style `immediately()` pushes at the last popped time, and
/// horizon-spanning delays that cross the wheel's overflow boundary
/// (2^36 µs). Pushes honor the engine invariant (never earlier than the
/// last popped time), which is the only schedule shape the wheel accepts.
#[test]
fn queue_backends_pop_identically() {
    let mut rng = SimRng::seed(0xD1FF);
    for case in 0..CASES {
        let mut heap = EventQueue::with_backend(QueueBackend::Heap);
        let mut wheel = EventQueue::with_backend(QueueBackend::Wheel);
        let n_ops = rng.gen_range(10, 400);
        let mut last_pop: u64 = 0;
        let mut payload = 0u64;
        let mut live = 0i64;
        for op in 0..n_ops {
            if live > 0 && rng.gen_bool(0.4) {
                let h = heap.pop();
                let w = wheel.pop();
                assert_eq!(h, w, "case {case} op {op}: backends diverged");
                if let Some((t, _)) = h {
                    last_pop = t.as_micros();
                }
                live -= 1;
            } else {
                let dt = match rng.gen_range(0, 6) {
                    0 => 0, // immediately(): ties at the popped instant
                    1 => rng.gen_range(0, 64),
                    2 => rng.gen_range(0, 100_000),
                    3 => rng.gen_range(0, 1 << 20),
                    4 => rng.gen_range(0, 1 << 37), // straddles the span
                    _ => (1 << 36) + rng.gen_range(0, 1 << 30), // overflow
                };
                let t = SimTime::from_micros(last_pop + dt);
                heap.push(t, payload);
                wheel.push(t, payload);
                payload += 1;
                live += 1;
            }
            assert_eq!(heap.len(), wheel.len(), "case {case} op {op}");
            assert_eq!(heap.peek_time(), wheel.peek_time(), "case {case} op {op}");
        }
        loop {
            let h = heap.pop();
            let w = wheel.pop();
            assert_eq!(h, w, "case {case} drain: backends diverged");
            if h.is_none() {
                break;
            }
        }
    }
}

/// The bitset's cached popcount always matches a recount.
#[test]
fn bitset_count_is_consistent() {
    let mut rng = SimRng::seed(0xB17);
    for case in 0..CASES {
        let n_ops = rng.gen_range(0, 300) as usize;
        let mut s = BitSet::new(256);
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..n_ops {
            let idx = rng.gen_range(0, 256) as usize;
            if rng.gen_bool(0.5) {
                s.set(idx);
                model.insert(idx);
            } else {
                s.clear(idx);
                model.remove(&idx);
            }
        }
        assert_eq!(s.count_ones(), model.len(), "case {case}");
        let ones: Vec<usize> = s.iter_ones().collect();
        let expect: Vec<usize> = model.into_iter().collect();
        assert_eq!(ones, expect, "case {case}");
    }
}

/// Max-min fair rates never exceed caps and never oversubscribe a link.
#[test]
fn max_min_rates_feasible() {
    let mut rng = SimRng::seed(0xF1A7);
    for case in 0..CASES {
        let cap = f64_in(&mut rng, 1.0, 1e9);
        let n = rng.gen_range(1, 20) as usize;
        let mut net = Network::new();
        let l = net.add_link(cap);
        let flows: Vec<FlowSpec> = (0..n)
            .map(|_| {
                let bytes = f64_in(&mut rng, 1.0, 1e8);
                let f = FlowSpec::new(vec![l], bytes);
                if rng.gen_bool(0.5) {
                    f.with_cap(f64_in(&mut rng, 1.0, 1e8))
                } else {
                    f
                }
            })
            .collect();
        let rates = max_min_rates(&net, &flows);
        let total: f64 = rates.iter().sum();
        assert!(
            total <= cap * (1.0 + 1e-6),
            "case {case}: oversubscribed: {total} > {cap}"
        );
        for (r, f) in rates.iter().zip(&flows) {
            assert!(*r >= 0.0, "case {case}");
            if let Some(c) = f.rate_cap_bps {
                assert!(*r <= c * (1.0 + 1e-9), "case {case}: cap violated: {r} > {c}");
            }
        }
    }
}

/// Max-min fairness is work-conserving on a single link: either the link
/// is (nearly) full or every flow is at its cap.
#[test]
fn max_min_rates_work_conserving() {
    let mut rng = SimRng::seed(0xC0156);
    for case in 0..CASES {
        let cap = f64_in(&mut rng, 1.0, 1e9);
        let n = rng.gen_range(1, 20) as usize;
        let flow_caps: Vec<f64> = (0..n).map(|_| f64_in(&mut rng, 1.0, 1e8)).collect();
        let mut net = Network::new();
        let l = net.add_link(cap);
        let flows: Vec<FlowSpec> = flow_caps
            .iter()
            .map(|&c| FlowSpec::new(vec![l], 1.0).with_cap(c))
            .collect();
        let rates = max_min_rates(&net, &flows);
        let total: f64 = rates.iter().sum();
        let all_capped = rates
            .iter()
            .zip(&flow_caps)
            .all(|(r, c)| (r - c).abs() <= c * 1e-6);
        assert!(
            total >= cap * (1.0 - 1e-6) || all_capped,
            "case {case}: not work conserving: total={total} cap={cap} rates={rates:?}"
        );
    }
}

/// ECDF is monotone, hits 0 below the minimum and 1 at/above the maximum.
#[test]
fn ecdf_properties() {
    let mut rng = SimRng::seed(0xECD);
    for case in 0..CASES {
        let n = rng.gen_range(1, 200) as usize;
        let values: Vec<f64> = (0..n).map(|_| f64_in(&mut rng, -1e6, 1e6)).collect();
        let e = Ecdf::new(values.clone());
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(e.eval(lo - 1.0), 0.0, "case {case}");
        assert_eq!(e.eval(hi), 1.0, "case {case}");
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = lo + (hi - lo) * i as f64 / 20.0;
            let fx = e.eval(x);
            assert!(fx >= prev, "case {case}: ECDF not monotone");
            prev = fx;
        }
    }
}

/// Sample quantiles are bounded by min/max and ordered in p.
#[test]
fn samples_quantiles_ordered() {
    let mut rng = SimRng::seed(0x5A3);
    for case in 0..CASES {
        let n = rng.gen_range(1, 100) as usize;
        let values: Vec<f64> = (0..n).map(|_| f64_in(&mut rng, -1e6, 1e6)).collect();
        let mut s = Samples::from_values(values);
        let q25 = s.quantile(0.25).unwrap();
        let q50 = s.quantile(0.5).unwrap();
        let q75 = s.quantile(0.75).unwrap();
        assert!(s.min().unwrap() <= q25, "case {case}");
        assert!(q25 <= q50 && q50 <= q75, "case {case}");
        assert!(q75 <= s.max().unwrap(), "case {case}");
    }
}

/// A resampled step series always reports values the series contains.
#[test]
fn step_series_resample_values_exist() {
    let mut rng = SimRng::seed(0x57E9);
    for case in 0..CASES {
        let n = rng.gen_range(1, 50) as usize;
        let mut pts: Vec<(u64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0, 10_000), f64_in(&mut rng, -100.0, 100.0)))
            .collect();
        pts.sort_by_key(|(t, _)| *t);
        pts.dedup_by_key(|(t, _)| *t);
        let series = StepSeries::from_points(
            pts.iter()
                .map(|&(t, v)| (SimTime::from_micros(t), v))
                .collect(),
        );
        let xs = series.resample(
            SimTime::ZERO,
            SimTime::from_micros(10_000),
            SimDuration::from_micros(500),
        );
        let allowed: Vec<f64> = pts.iter().map(|&(_, v)| v).collect();
        for x in xs {
            assert!(allowed.contains(&x), "case {case}: invented value {x}");
        }
    }
}

/// Forked RNG streams are reproducible for arbitrary (seed, stream) pairs.
#[test]
fn rng_fork_reproducible() {
    let mut meta = SimRng::seed(0xF02C);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let stream = meta.next_u64();
        let parent = SimRng::seed(seed);
        let mut a = parent.fork(stream);
        let mut b = parent.fork(stream);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64(), "case {case}");
        }
    }
}
