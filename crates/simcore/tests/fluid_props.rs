//! Seeded property tests for the fluid (flow-level) bandwidth model.
//!
//! Inputs are generated from seeded [`SimRng`] streams (the workspace has no
//! external property-testing dependency), so every case is reproducible from
//! the iteration number printed on failure. Three invariants are pinned:
//!
//! 1. **Per-link conservation** — the max-min allocation never oversubscribes
//!    any link of a random multi-link topology (dead, zero-capacity links
//!    included).
//! 2. **Completion-time monotonicity** — adding a competing flow never makes
//!    an existing transfer finish *earlier*.
//! 3. **Differential** — [`FluidSim`]'s exact piecewise-constant completion
//!    instants agree with a brute-force small-step Euler integration of the
//!    same rate function.

use spotcheck_simcore::fluid::{max_min_rates, FlowSpec, FluidSim, LinkId, Network};
use spotcheck_simcore::rng::SimRng;

const CASES: u64 = 48;

fn f64_in(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

/// A random topology of 2-6 links. When `allow_dead`, roughly one link in
/// eight has zero capacity (a crashed server).
fn random_topology(rng: &mut SimRng, allow_dead: bool) -> (Network, Vec<LinkId>) {
    let mut net = Network::new();
    let n = rng.gen_range(2, 7) as usize;
    let links: Vec<LinkId> = (0..n)
        .map(|_| {
            if allow_dead && rng.gen_bool(0.125) {
                net.add_link(0.0)
            } else {
                net.add_link(f64_in(rng, 1e6, 1e9))
            }
        })
        .collect();
    (net, links)
}

/// A random flow crossing 1-3 distinct links of `links`.
fn random_flow(rng: &mut SimRng, links: &[LinkId], bytes: f64) -> FlowSpec {
    let hops = rng.gen_range(1, 4.min(links.len() as u64 + 1)) as usize;
    let mut route = Vec::with_capacity(hops);
    while route.len() < hops {
        let l = links[rng.gen_range(0, links.len() as u64) as usize];
        if !route.contains(&l) {
            route.push(l);
        }
    }
    let mut f = FlowSpec::new(route, bytes);
    if rng.gen_bool(0.4) {
        f = f.with_cap(f64_in(rng, 1e5, 1e8));
    }
    if rng.gen_bool(0.3) {
        f = f.with_weight(f64_in(rng, 0.5, 4.0));
    }
    f
}

/// Sum of allocated rates on every link stays within its capacity, for
/// random multi-link topologies that may include dead (zero-capacity) links.
#[test]
fn per_link_conservation() {
    let mut rng = SimRng::seed(0xF10C0);
    for case in 0..CASES {
        let (net, links) = random_topology(&mut rng, true);
        let n = rng.gen_range(1, 16) as usize;
        let flows: Vec<FlowSpec> = (0..n)
            .map(|_| {
                let bytes = if rng.gen_bool(0.2) {
                    f64::INFINITY
                } else {
                    f64_in(&mut rng, 1e5, 1e8)
                };
                random_flow(&mut rng, &links, bytes)
            })
            .collect();
        let rates = max_min_rates(&net, &flows);
        for &l in &links {
            let load: f64 = rates
                .iter()
                .zip(&flows)
                .filter(|(_, f)| f.route.contains(&l))
                .map(|(r, _)| *r)
                .sum();
            let cap = net.capacity(l);
            assert!(
                load <= cap * (1.0 + 1e-6) + 1e-9,
                "case {case}: link {l:?} oversubscribed: {load} > {cap}"
            );
        }
        for (i, r) in rates.iter().enumerate() {
            assert!(r.is_finite() || flows[i].route.is_empty(), "case {case}");
            assert!(*r >= 0.0, "case {case}: negative rate {r}");
        }
    }
}

/// Completion instant of a fluid simulation's first flow, if it completes
/// within the horizon.
fn completion_of_first(net: &Network, flows: &[FlowSpec]) -> Option<f64> {
    let mut sim = FluidSim::new(net.clone());
    let first = sim.add_flow(flows[0].clone());
    for f in &flows[1..] {
        sim.add_flow(f.clone());
    }
    sim.drain_completions()
        .into_iter()
        .find(|(_, id)| *id == first)
        .map(|(t, _)| t.as_secs_f64())
}

/// Adding one more competing flow never makes an existing transfer finish
/// earlier.
///
/// Restricted to a single shared bottleneck (the backup-NIC scenario):
/// multi-link max-min fairness is famously *non*-monotone — a new flow can
/// throttle a competitor on one link and thereby free a different
/// bottleneck, speeding a third flow up — so the property only holds when
/// every flow crosses the same link.
#[test]
fn completion_time_monotone_under_added_load() {
    let mut rng = SimRng::seed(0x0_11070);
    for case in 0..CASES {
        let mut net = Network::new();
        let nic = net.add_link(f64_in(&mut rng, 1e6, 1e9));
        let n = rng.gen_range(1, 10) as usize;
        let flows: Vec<FlowSpec> = (0..n)
            .map(|_| {
                let bytes = f64_in(&mut rng, 1e5, 5e7);
                let mut f = FlowSpec::new(vec![nic], bytes);
                if rng.gen_bool(0.4) {
                    f = f.with_cap(f64_in(&mut rng, 1e5, 1e8));
                }
                if rng.gen_bool(0.3) {
                    f = f.with_weight(f64_in(&mut rng, 0.5, 4.0));
                }
                f
            })
            .collect();
        let extra = FlowSpec::new(vec![nic], f64_in(&mut rng, 1e6, 1e8));
        let mut with_extra = flows.clone();
        with_extra.push(extra);

        let base = completion_of_first(&net, &flows);
        let loaded = completion_of_first(&net, &with_extra);
        let (Some(base), Some(loaded)) = (base, loaded) else {
            continue;
        };
        assert!(
            loaded >= base - 2e-6,
            "case {case}: added load sped a transfer up: {base} -> {loaded}"
        );
    }
}

/// Brute-force small-step integration of the same max-min rate function:
/// returns each flow's completion time (seconds), `None` if it never
/// finishes within the horizon.
fn brute_force_completions(net: &Network, flows: &[FlowSpec], dt: f64, horizon: f64) -> Vec<Option<f64>> {
    let mut remaining: Vec<f64> = flows.iter().map(|f| f.remaining_bytes).collect();
    let mut done: Vec<Option<f64>> = vec![None; flows.len()];
    let mut t = 0.0;
    while t < horizon {
        let active: Vec<FlowSpec> = flows
            .iter()
            .enumerate()
            .filter(|(i, _)| done[*i].is_none())
            .map(|(i, f)| FlowSpec {
                remaining_bytes: remaining[i],
                ..f.clone()
            })
            .collect();
        if active.is_empty() {
            break;
        }
        let rates = max_min_rates(net, &active);
        let idx: Vec<usize> = (0..flows.len()).filter(|i| done[*i].is_none()).collect();
        t += dt;
        for (k, &i) in idx.iter().enumerate() {
            remaining[i] = (remaining[i] - rates[k] * dt).max(0.0);
            if remaining[i] <= 1e-9 {
                done[i] = Some(t);
            }
        }
    }
    done
}

/// [`FluidSim`]'s exact completion instants match brute-force small-step
/// integration to within the integration step.
#[test]
fn differential_against_small_step_integration() {
    let mut rng = SimRng::seed(0xD1FF);
    for case in 0..16 {
        let (net, links) = random_topology(&mut rng, false);
        let n = rng.gen_range(2, 8) as usize;
        // Sizes chosen so everything drains in a few simulated seconds:
        // capacities are >= 1 MB/s and routes are short.
        let flows: Vec<FlowSpec> = (0..n)
            .map(|_| {
                let bytes = f64_in(&mut rng, 1e5, 2e7);
                random_flow(&mut rng, &links, bytes)
            })
            .collect();

        let dt = 1e-3;
        let horizon = 300.0;
        let brute = brute_force_completions(&net, &flows, dt, horizon);

        let mut sim = FluidSim::new(net.clone());
        let ids: Vec<_> = flows.iter().map(|f| sim.add_flow(f.clone())).collect();
        let drained = sim.drain_completions();
        for (i, id) in ids.iter().enumerate() {
            let fluid_t = drained
                .iter()
                .find(|(_, f)| f == id)
                .map(|(t, _)| t.as_secs_f64());
            match (fluid_t, brute[i]) {
                (Some(a), Some(b)) => {
                    // The Euler integration lags by at most one step per
                    // completed predecessor (rate changes are detected one
                    // step late), so allow n steps of slack plus rounding.
                    let tol = dt * (n as f64 + 1.0) + a.max(1.0) * 1e-6;
                    assert!(
                        (a - b).abs() <= tol,
                        "case {case} flow {i}: fluid={a} brute={b} tol={tol}"
                    );
                }
                (a, b) => panic!("case {case} flow {i}: fluid={a:?} brute={b:?} disagree"),
            }
        }
    }
}
