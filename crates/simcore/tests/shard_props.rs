//! Seeded property test for the sharded engine's Lamport merge: random
//! cross-shard event cascades must deliver in exactly the order a flat
//! single-queue reference engine produces — at any worker count and any
//! epoch subdivision of the lookahead.
//!
//! The shared model is a set of chattering agents: every delivery logs a
//! line and (driven by the agent's own forked RNG) may schedule local
//! follow-ups and/or send messages to random shards at or beyond the
//! cross-shard latency. The agent logic is identical in both engines, so
//! the per-shard logs agree if and only if every delivery happened at the
//! same instant and in the same order.

use std::collections::BTreeMap;

use spotcheck_simcore::queue::EventQueue;
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::shard::{
    set_fast_forward, set_pool_enabled, set_shard_workers, ShardCtx, ShardId, ShardWorld,
    ShardedSim,
};
use spotcheck_simcore::time::{SimDuration, SimTime};

const LOOKAHEAD: SimDuration = SimDuration::from_secs(600);
const HORIZON: SimTime = SimTime::from_secs(3 * 86_400);

/// What an agent wants done after a delivery.
enum Action {
    Local(SimDuration, u64),
    Send(u16, SimDuration, u64),
}

/// One shard's model logic, shared verbatim by both engines.
struct Agent {
    id: u16,
    shards: u16,
    rng: SimRng,
    log: Vec<String>,
}

impl Agent {
    fn new(seed: u64, id: u16, shards: u16) -> Self {
        Agent {
            id,
            shards,
            rng: SimRng::seed(seed).fork_named(&format!("agent{id}")),
            log: Vec::new(),
        }
    }

    /// Rolls follow-up actions; expected branching factor < 1 so cascades
    /// die out.
    fn follow_ups(&mut self, payload: u64) -> Vec<Action> {
        let mut acts = Vec::new();
        if self.rng.gen_range(0, 10) < 4 {
            let delay = SimDuration::from_secs(self.rng.gen_range(0, 7_200));
            acts.push(Action::Local(delay, payload.wrapping_mul(31) + 1));
        }
        if self.rng.gen_range(0, 10) < 4 {
            let dst = self.rng.gen_range(0, self.shards as u64) as u16;
            // Latency >= the lookahead, sometimes exactly at it, sometimes
            // landing on round boundaries to exercise ties.
            let extra = SimDuration::from_secs(self.rng.gen_range(0, 4) * 600);
            acts.push(Action::Send(dst, LOOKAHEAD + extra, payload.wrapping_mul(17) + 2));
        }
        acts
    }

    fn on_event(&mut self, now: SimTime, payload: u64) -> Vec<Action> {
        self.log.push(format!("{} evt {payload} @{now}", self.id));
        self.follow_ups(payload)
    }

    fn on_message(&mut self, now: SimTime, src: ShardId, payload: u64) -> Vec<Action> {
        self.log.push(format!("{} msg {payload} from {src} @{now}", self.id));
        self.follow_ups(payload)
    }
}

/// The sharded engine's wrapper around an [`Agent`].
struct AgentWorld(Agent);

impl ShardWorld for AgentWorld {
    type Event = u64;
    type Msg = u64;

    fn handle(&mut self, payload: u64, ctx: &mut ShardCtx<'_, '_, u64, u64>) {
        let now = ctx.now();
        for act in self.0.on_event(now, payload) {
            match act {
                Action::Local(d, p) => ctx.after(d, p),
                Action::Send(dst, lat, p) => ctx.send(ShardId(dst), now + lat, p),
            }
        }
    }

    fn on_message(&mut self, src: ShardId, payload: u64, ctx: &mut ShardCtx<'_, '_, u64, u64>) {
        let now = ctx.now();
        for act in self.0.on_message(now, src, payload) {
            match act {
                Action::Local(d, p) => ctx.after(d, p),
                Action::Send(dst, lat, p) => ctx.send(ShardId(dst), now + lat, p),
            }
        }
    }
}

/// Seeds each shard with the same initial schedule in both engines.
fn initial_events(seed: u64, shard: u16) -> Vec<(SimTime, u64)> {
    let mut rng = SimRng::seed(seed).fork_named(&format!("init{shard}"));
    (0..5)
        .map(|i| {
            let t = SimTime::from_secs(rng.gen_range(0, 86_400));
            (t, shard as u64 * 1_000 + i)
        })
        .collect()
}

/// The flat reference: one global time-ordered loop over per-shard FIFO
/// event queues plus a key-sorted message set, applying the canonical
/// delivery rule directly — at any instant, a shard's pending messages
/// (in `(fire_at, src, seq)` order) deliver before its local events.
fn reference_logs(seed: u64, shards: u16) -> Vec<Vec<String>> {
    let mut agents: Vec<Agent> = (0..shards).map(|s| Agent::new(seed, s, shards)).collect();
    let mut queues: Vec<EventQueue<u64>> = (0..shards).map(|_| EventQueue::new()).collect();
    // Pending messages per destination, keyed by (fire_at, src, seq).
    let mut inboxes: Vec<BTreeMap<(SimTime, u16, u64), u64>> =
        (0..shards).map(|_| BTreeMap::new()).collect();
    let mut next_seq: Vec<u64> = vec![0; shards as usize];
    for s in 0..shards {
        for (t, p) in initial_events(seed, s) {
            queues[s as usize].push(t, p);
        }
    }
    loop {
        // Global minimum next instant across every queue and inbox.
        let mut t: Option<SimTime> = None;
        for s in 0..shards as usize {
            for cand in [
                queues[s].peek_time(),
                inboxes[s].keys().next().map(|k| k.0),
            ]
            .into_iter()
            .flatten()
            {
                t = Some(t.map_or(cand, |cur| cur.min(cand)));
            }
        }
        let Some(t) = t else { break };
        if t > HORIZON {
            break;
        }
        // Cross-shard latency > 0, so nothing processed at `t` can create
        // more work at `t` on another shard: shard order is immaterial.
        for s in 0..shards as usize {
            let mut acts: Vec<Action> = Vec::new();
            loop {
                let msg_due = inboxes[s].keys().next().is_some_and(|k| k.0 == t);
                if msg_due {
                    let (key, payload) = inboxes[s].pop_first().expect("peeked message");
                    acts.extend(agents[s].on_message(t, ShardId(key.1), payload));
                } else if queues[s].peek_time() == Some(t) {
                    let (_, payload) = queues[s].pop().expect("peeked event");
                    acts.extend(agents[s].on_event(t, payload));
                } else {
                    break;
                }
                // Apply follow-ups immediately, as the live engine does:
                // same-instant local events join this instant's FIFO tail.
                for act in acts.drain(..) {
                    match act {
                        Action::Local(d, p) => queues[s].push(t + d, p),
                        Action::Send(dst, lat, p) => {
                            let key = (t + lat, s as u16, next_seq[s]);
                            next_seq[s] += 1;
                            inboxes[dst as usize].insert(key, p);
                        }
                    }
                }
            }
        }
    }
    agents.into_iter().map(|a| a.log).collect()
}

/// Runs the real sharded engine at a worker count and epoch subdivision.
fn sharded_logs(seed: u64, shards: u16, workers: usize, epoch: SimDuration) -> Vec<Vec<String>> {
    sharded_logs_cfg(seed, shards, workers, epoch, true, true)
}

/// [`sharded_logs`] with explicit execution-mode knobs: persistent pool
/// vs scoped spawns, and idle-epoch fast-forward on/off.
fn sharded_logs_cfg(
    seed: u64,
    shards: u16,
    workers: usize,
    epoch: SimDuration,
    pool: bool,
    fast_forward: bool,
) -> Vec<Vec<String>> {
    set_shard_workers(workers);
    set_pool_enabled(pool);
    set_fast_forward(fast_forward);
    let worlds: Vec<AgentWorld> = (0..shards)
        .map(|s| AgentWorld(Agent::new(seed, s, shards)))
        .collect();
    let mut sim = ShardedSim::with_epoch(worlds, LOOKAHEAD, epoch);
    for s in 0..shards {
        for (t, p) in initial_events(seed, s) {
            sim.schedule_at(s as usize, t, p);
        }
    }
    sim.run_until(HORIZON);
    set_shard_workers(0);
    set_pool_enabled(true);
    set_fast_forward(true);
    sim.worlds().map(|w| w.0.log.clone()).collect()
}

#[test]
fn lamport_merge_equals_flat_reference_order() {
    for seed in [1u64, 0xBEEF, 42, 777, 0x5EED5EED] {
        for shards in [2u16, 3, 7] {
            let reference = reference_logs(seed, shards);
            assert!(
                reference.iter().map(Vec::len).sum::<usize>() > 0,
                "seed {seed:#x}: degenerate schedule delivers nothing"
            );
            for workers in [1usize, 4] {
                for epoch in [
                    LOOKAHEAD,
                    SimDuration::from_secs(300),
                    SimDuration::from_secs(97), // doesn't divide the lookahead
                ] {
                    let got = sharded_logs(seed, shards, workers, epoch);
                    assert_eq!(
                        got, reference,
                        "delivery order diverged: seed={seed:#x} shards={shards} \
                         workers={workers} epoch={epoch}"
                    );
                }
            }
        }
    }
}

#[test]
fn pool_spawn_and_fast_forward_all_equal_the_flat_reference() {
    // The execution-mode knobs (persistent pool vs per-window spawns,
    // idle-epoch fast-forward on/off) must be invisible next to the flat
    // single-queue reference — at serial and parallel worker counts and
    // at a non-dividing epoch, where fast-forward's grid arithmetic is
    // least trivial.
    for seed in [0xBEEF_u64, 0x5EED5EED] {
        for shards in [2u16, 7] {
            let reference = reference_logs(seed, shards);
            for workers in [1usize, 4] {
                for epoch in [LOOKAHEAD, SimDuration::from_secs(97)] {
                    for pool in [true, false] {
                        for fast_forward in [true, false] {
                            let got =
                                sharded_logs_cfg(seed, shards, workers, epoch, pool, fast_forward);
                            assert_eq!(
                                got, reference,
                                "diverged: seed={seed:#x} shards={shards} workers={workers} \
                                 epoch={epoch} pool={pool} fast_forward={fast_forward}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn messages_never_arrive_late_whatever_the_epoch() {
    // A lookahead-violating latency must panic rather than silently
    // reorder: the engine's guard fires on send.
    let result = std::panic::catch_unwind(|| {
        struct Bad;
        impl ShardWorld for Bad {
            type Event = ();
            type Msg = ();
            fn handle(&mut self, _e: (), ctx: &mut ShardCtx<'_, '_, (), ()>) {
                // Below the lookahead: conservative exchange cannot honor it.
                ctx.send(ShardId(1), ctx.now() + SimDuration::from_secs(1), ());
            }
            fn on_message(&mut self, _s: ShardId, _m: (), _c: &mut ShardCtx<'_, '_, (), ()>) {}
        }
        let mut sim = ShardedSim::new(vec![Bad, Bad], SimDuration::from_secs(600));
        sim.schedule_at(0, SimTime::from_secs(50), ());
        sim.run_until(SimTime::from_secs(1_200));
    });
    assert!(result.is_err(), "lookahead violation must panic");
}
