//! LEB128 variable-length integer encoding.
//!
//! The binary trace-library format (`spotmarket::archive`) stores
//! delta-encoded microsecond timestamps, point counts, and string lengths
//! as varints: seven payload bits per byte, least-significant group first,
//! high bit set on every byte except the last. Small values — which
//! dominate after delta encoding (spot-price change points arrive minutes
//! apart, i.e. deltas of ~10^8 us fit in four bytes instead of eight) —
//! take one to four bytes; any `u64` fits in at most ten.
//!
//! Decoding is strict: non-canonical encodings (a ten-byte sequence whose
//! final byte carries bits beyond the 64th) and truncated sequences are
//! errors, never panics, so corrupted archive bytes surface as rejected
//! loads rather than garbage values.

/// Maximum encoded length of a `u64` (ceil(64 / 7) bytes).
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the LEB128 encoding of `v` to `buf`.
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes a LEB128 `u64` from `bytes` starting at `*pos`, advancing
/// `*pos` past the encoding.
///
/// # Errors
///
/// Returns a description when the sequence is truncated, longer than
/// [`MAX_VARINT_LEN`], or overflows 64 bits.
///
/// Inlined because archive block decoding calls this once per point on
/// multi-million-point libraries; the error paths stay out of line
/// behind [`varint_error`].
#[inline]
pub fn get_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(varint_error("truncated varint", *pos));
        };
        *pos += 1;
        let payload = u64::from(byte & 0x7f);
        if shift == 63 && payload > 1 {
            return Err(varint_error("varint overflows u64", *pos - 1));
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift >= 64 {
            return Err(format!("varint longer than {MAX_VARINT_LEN} bytes"));
        }
    }
}

/// Cold error constructor, so the hot decode loop carries no `format!`
/// machinery inline.
#[cold]
#[inline(never)]
fn varint_error(what: &str, at: usize) -> String {
    format!("{what} at byte {at}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_boundary_values() {
        let cases = [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in cases {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT_LEN);
            let mut pos = 0;
            assert_eq!(get_u64(&buf, &mut pos), Ok(v), "value {v}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn concatenated_values_decode_in_sequence() {
        let mut buf = Vec::new();
        for v in [5u64, 300, 0, u64::MAX] {
            put_u64(&mut buf, v);
        }
        let mut pos = 0;
        for v in [5u64, 300, 0, u64::MAX] {
            assert_eq!(get_u64(&buf, &mut pos), Ok(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(get_u64(&buf[..cut], &mut pos).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn overlong_and_overflowing_encodings_are_rejected()
    {
        // Eleven continuation bytes: longer than any canonical u64.
        let overlong = [0x80u8; 11];
        let mut pos = 0;
        assert!(get_u64(&overlong, &mut pos).is_err());
        // Ten bytes whose final byte carries bits past the 64th.
        let overflow = [
            0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02,
        ];
        let mut pos = 0;
        assert!(get_u64(&overflow, &mut pos).is_err());
    }

    #[test]
    fn small_deltas_stay_small() {
        for (v, len) in [(0u64, 1usize), (127, 1), (128, 2), (16_383, 2), (1 << 28, 5)] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            assert_eq!(buf.len(), len, "value {v}");
        }
    }
}
