//! Fluid (flow-level) bandwidth model.
//!
//! Checkpoint streams, migration transfers, and restore reads are modeled as
//! *flows* traversing capacity-limited *links* (a host NIC, the backup
//! server's NIC, its disk). Rates are allocated by **max-min fairness with
//! per-flow rate caps**, computed by the classic progressive-filling
//! algorithm. A [`FluidSim`] advances the flow set through time, returning
//! exact completion instants (piecewise-constant rates integrate exactly).
//!
//! This is the substrate on which the paper's Figures 7-9 phenomena emerge:
//! VM-to-backup checkpoint streams saturating the backup NIC past ~35 VMs,
//! and concurrent lazy restores contending on the backup's disk read path.

use std::collections::HashMap;

use crate::time::{SimDuration, SimTime, MICROS_PER_SEC};

/// Identifies a link within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Identifies a flow within a [`FluidSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A capacity-limited resource (NIC, disk channel, ...).
#[derive(Debug, Clone)]
pub struct Link {
    /// Capacity in bytes per second.
    pub capacity_bps: f64,
}

/// A topology of links.
#[derive(Debug, Clone, Default)]
pub struct Network {
    links: Vec<Link>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a link with the given capacity in bytes/second and returns its id.
    ///
    /// A zero capacity is legal and models a dead resource (e.g. a crashed
    /// backup server): flows routed through it are allocated rate zero and
    /// stall rather than panicking the engine.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not finite and non-negative.
    pub fn add_link(&mut self, capacity_bps: f64) -> LinkId {
        assert!(
            capacity_bps.is_finite() && capacity_bps >= 0.0,
            "link capacity must be finite and non-negative, got {capacity_bps}"
        );
        self.links.push(Link { capacity_bps });
        LinkId(self.links.len() - 1)
    }

    /// Returns the capacity of `link` in bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn capacity(&self, link: LinkId) -> f64 {
        self.links[link.0].capacity_bps
    }

    /// Updates the capacity of `link`. Setting zero marks the resource dead
    /// (its flows stall at rate zero) — used by fault plans that crash a
    /// server mid-transfer.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or the capacity is not finite and
    /// non-negative.
    pub fn set_capacity(&mut self, link: LinkId, capacity_bps: f64) {
        assert!(
            capacity_bps.is_finite() && capacity_bps >= 0.0,
            "link capacity must be finite and non-negative, got {capacity_bps}"
        );
        self.links[link.0].capacity_bps = capacity_bps;
    }

    /// Returns the number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns true if the network has no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

/// A flow demand: a route through links plus an optional per-flow rate cap.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Links the flow traverses (a flow is limited by every link on its
    /// route).
    pub route: Vec<LinkId>,
    /// Bytes remaining to transfer. Use `f64::INFINITY` for an open-ended
    /// stream (e.g. a continuous checkpoint stream whose demand is governed
    /// externally).
    pub remaining_bytes: f64,
    /// Optional per-flow rate cap in bytes/second (e.g. `tc` throttling on
    /// the backup server).
    pub rate_cap_bps: Option<f64>,
    /// Relative weight for the fair share (default 1.0).
    pub weight: f64,
}

impl FlowSpec {
    /// Creates a flow of `bytes` over `route` with weight 1 and no cap.
    pub fn new(route: Vec<LinkId>, bytes: f64) -> Self {
        FlowSpec {
            route,
            remaining_bytes: bytes,
            rate_cap_bps: None,
            weight: 1.0,
        }
    }

    /// Sets a per-flow rate cap in bytes/second.
    pub fn with_cap(mut self, cap_bps: f64) -> Self {
        self.rate_cap_bps = Some(cap_bps);
        self
    }

    /// Sets the fair-share weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "flow weight must be positive, got {weight}"
        );
        self.weight = weight;
        self
    }
}

#[derive(Debug, Clone)]
struct FlowState {
    spec: FlowSpec,
    rate_bps: f64,
}

/// Computes weighted max-min fair rates for `flows` over `network` by
/// progressive filling.
///
/// Returns one rate per input flow, in input order. Flows with empty routes
/// are limited only by their cap (infinite if uncapped).
pub fn max_min_rates(network: &Network, flows: &[FlowSpec]) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 {
        return rates;
    }
    let mut frozen = vec![false; n];
    let mut remaining_cap: Vec<f64> = network.links.iter().map(|l| l.capacity_bps).collect();

    // Freeze route-less flows at their cap immediately (they consume no
    // shared capacity).
    for (i, f) in flows.iter().enumerate() {
        if f.route.is_empty() {
            rates[i] = f.rate_cap_bps.unwrap_or(f64::INFINITY);
            frozen[i] = true;
        }
    }

    loop {
        // Active weight per link.
        let mut link_weight: HashMap<usize, f64> = HashMap::new();
        let mut any_active = false;
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            any_active = true;
            for l in &f.route {
                *link_weight.entry(l.0).or_insert(0.0) += f.weight;
            }
        }
        if !any_active {
            break;
        }

        // The per-unit-weight fair increment each link supports.
        // The flow-level share is then weight * min over its route; a capped
        // flow may freeze earlier at its cap.
        let mut best: Option<(f64, Freeze)> = None;
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let route_unit = f
                .route
                .iter()
                .map(|l| remaining_cap[l.0] / link_weight[&l.0])
                .fold(f64::INFINITY, f64::min);
            let fair_rate = f.weight * route_unit;
            let (candidate_rate, how) = match f.rate_cap_bps {
                Some(cap) if cap < fair_rate => (cap, Freeze::ByCap(i)),
                _ => (fair_rate, Freeze::ByLink),
            };
            // Track the smallest *unit* increment across flows: for
            // link-limited flows that is candidate_rate / weight; for
            // cap-limited flows, cap / weight.
            let unit = candidate_rate / f.weight;
            if best.as_ref().map_or(true, |(u, _)| unit < *u) {
                best = Some((unit, how));
            }
        }
        // No candidate can only mean the active set produced no finite or
        // infinite unit at all (e.g. every remaining flow sits on a
        // zero-capacity link and numerics degenerated): freeze the stragglers
        // at rate zero rather than panicking mid-simulation.
        let Some((unit, how)) = best else {
            break;
        };

        match how {
            Freeze::ByCap(i) => {
                // Freeze exactly the cap-limited flow at its cap, charge its
                // route, and continue filling the rest. (`ByCap` is only
                // constructed for capped flows; rate zero is the safe
                // fallback if that invariant ever breaks.)
                let cap = flows[i].rate_cap_bps.unwrap_or(0.0);
                rates[i] = cap;
                frozen[i] = true;
                for l in &flows[i].route {
                    remaining_cap[l.0] = (remaining_cap[l.0] - cap).max(0.0);
                }
            }
            Freeze::ByLink => {
                // Give every active flow `weight * unit` and freeze those on a
                // now-saturated link.
                let mut usage: HashMap<usize, f64> = HashMap::new();
                for (i, f) in flows.iter().enumerate() {
                    if frozen[i] {
                        continue;
                    }
                    let r = f.weight * unit;
                    rates[i] = r;
                    for l in &f.route {
                        *usage.entry(l.0).or_insert(0.0) += r;
                    }
                }
                // Identify saturated links.
                let mut saturated: Vec<usize> = Vec::new();
                for (&l, &u) in &usage {
                    if u >= remaining_cap[l] * (1.0 - 1e-9) {
                        saturated.push(l);
                    }
                }
                // Freeze flows crossing a saturated link; charge their usage.
                for (i, f) in flows.iter().enumerate() {
                    if frozen[i] {
                        continue;
                    }
                    if f.route.iter().any(|l| saturated.contains(&l.0)) {
                        frozen[i] = true;
                        for l in &f.route {
                            remaining_cap[l.0] = (remaining_cap[l.0] - rates[i]).max(0.0);
                        }
                    }
                }
                // Degenerate numeric case: nothing froze -> freeze everything
                // at the current fair rate to guarantee termination.
                if saturated.is_empty() {
                    for (i, f) in flows.iter().enumerate() {
                        if frozen[i] {
                            continue;
                        }
                        frozen[i] = true;
                        for l in &f.route {
                            remaining_cap[l.0] = (remaining_cap[l.0] - rates[i]).max(0.0);
                        }
                    }
                }
            }
        }
    }
    rates
}

enum Freeze {
    ByCap(usize),
    ByLink,
}

/// Outcome of advancing a [`FluidSim`].
#[derive(Debug, Clone, PartialEq)]
pub struct Advance {
    /// The instant the simulation advanced to.
    pub now: SimTime,
    /// Flows that completed during this advance, in completion order.
    pub completed: Vec<FlowId>,
}

/// A flow-level simulator: tracks a mutable set of flows, allocates max-min
/// fair rates, and advances time to flow completions.
pub struct FluidSim {
    network: Network,
    flows: HashMap<FlowId, FlowState>,
    order: Vec<FlowId>,
    next_id: u64,
    now: SimTime,
    rates_valid: bool,
}

impl FluidSim {
    /// Creates a simulator over `network` starting at time zero.
    pub fn new(network: Network) -> Self {
        FluidSim {
            network,
            flows: HashMap::new(),
            order: Vec::new(),
            next_id: 0,
            now: SimTime::ZERO,
            rates_valid: false,
        }
    }

    /// Returns the current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the underlying network (to adjust capacities).
    pub fn network_mut(&mut self) -> &mut Network {
        self.rates_valid = false;
        &mut self.network
    }

    /// Read-only access to the network (to inspect capacities).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Changes the fair-share weight of a live flow (e.g. boosting a
    /// deadline-critical transfer). Returns false if the flow is unknown.
    pub fn set_weight(&mut self, id: FlowId, weight: f64) -> bool {
        assert!(
            weight.is_finite() && weight > 0.0,
            "flow weight must be positive, got {weight}"
        );
        if let Some(st) = self.flows.get_mut(&id) {
            st.spec.weight = weight;
            self.rates_valid = false;
            true
        } else {
            false
        }
    }

    /// Adds a flow and returns its id.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            FlowState {
                spec,
                rate_bps: 0.0,
            },
        );
        self.order.push(id);
        self.rates_valid = false;
        id
    }

    /// Removes a flow before completion (e.g. a migration aborted); returns
    /// the bytes it still had outstanding, or `None` if unknown.
    pub fn remove_flow(&mut self, id: FlowId) -> Option<f64> {
        let st = self.flows.remove(&id)?;
        self.order.retain(|&f| f != id);
        self.rates_valid = false;
        Some(st.spec.remaining_bytes)
    }

    /// Returns the remaining bytes of a flow, if it exists.
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|s| s.spec.remaining_bytes)
    }

    /// Returns the route of a flow, if it exists.
    pub fn route(&self, id: FlowId) -> Option<&[LinkId]> {
        self.flows.get(&id).map(|s| s.spec.route.as_slice())
    }

    /// Returns the current allocated rate of a flow in bytes/second, if it
    /// exists. Rates are only meaningful after an [`FluidSim::advance`] or
    /// [`FluidSim::recompute_rates`].
    pub fn rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|s| s.rate_bps)
    }

    /// Returns the number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Returns the total rate currently allocated across `link` in
    /// bytes/second (recomputing stale rates first). Used for
    /// contention-aware placement: a hot link carries a high load relative
    /// to its capacity.
    pub fn link_load(&mut self, link: LinkId) -> f64 {
        if !self.rates_valid {
            self.recompute_rates();
        }
        self.order
            .iter()
            .filter_map(|id| self.flows.get(id))
            .filter(|st| st.spec.route.contains(&link))
            .map(|st| st.rate_bps)
            .sum()
    }

    /// Recomputes max-min fair rates for the current flow set.
    pub fn recompute_rates(&mut self) {
        // Each recomputation is one fluid-simulation event (counted for the
        // experiment harness's throughput accounting).
        crate::metrics::add(1);
        let specs: Vec<FlowSpec> = self
            .order
            .iter()
            .map(|id| self.flows[id].spec.clone())
            .collect();
        let rates = max_min_rates(&self.network, &specs);
        for (id, rate) in self.order.iter().zip(rates) {
            // `order` and `flows` are kept in lockstep; skip (rather than
            // panic on) an id that somehow left the map.
            if let Some(st) = self.flows.get_mut(id) {
                st.rate_bps = rate;
            }
        }
        self.rates_valid = true;
    }

    /// Returns the duration until the next flow completes at current rates,
    /// or `None` if no finite-size flow is progressing.
    pub fn time_to_next_completion(&mut self) -> Option<SimDuration> {
        if !self.rates_valid {
            self.recompute_rates();
        }
        let mut best: Option<f64> = None;
        for st in self.flows.values() {
            if st.spec.remaining_bytes.is_finite() && st.rate_bps > 0.0 {
                let t = st.spec.remaining_bytes / st.rate_bps;
                if best.map_or(true, |b| t < b) {
                    best = Some(t);
                }
            }
        }
        // Round *up* to the microsecond grid (minimum one microsecond):
        // rounding down could return a zero step while bytes remain, and a
        // zero step makes no progress.
        best.map(|t| {
            let micros = (t * MICROS_PER_SEC as f64).ceil();
            if micros >= u64::MAX as f64 {
                SimDuration::MAX
            } else {
                SimDuration::from_micros((micros as u64).max(1))
            }
        })
    }

    /// Advances time by exactly `dt`, transferring bytes at current fair
    /// rates, completing flows that finish within `dt`.
    ///
    /// Rates are recomputed each time a flow completes, so the advance is
    /// exact (piecewise-constant rate integration).
    pub fn advance(&mut self, dt: SimDuration) -> Advance {
        let target = self.now + dt;
        let mut completed = Vec::new();
        loop {
            if !self.rates_valid {
                self.recompute_rates();
            }
            let remaining = target.since(self.now);
            if remaining.is_zero() {
                break;
            }
            let next = self.time_to_next_completion();
            let step = match next {
                Some(t) if t <= remaining => t,
                _ => remaining,
            };
            // A zero-length completion step still completes flows below.
            self.transfer_for(step);
            self.now += step;
            // Harvest completions: a flow whose residue cannot sustain even
            // one microsecond of transfer at its current rate is done (the
            // epsilon absorbs the microsecond-grid rounding above).
            let mut done: Vec<FlowId> = self
                .order
                .iter()
                .copied()
                .filter(|id| {
                    let st = &self.flows[id];
                    let eps = (st.rate_bps * 1e-6).max(1e-6);
                    st.spec.remaining_bytes.is_finite() && st.spec.remaining_bytes <= eps
                })
                .collect();
            if !done.is_empty() {
                for id in &done {
                    self.flows.remove(id);
                    self.order.retain(|f| f != id);
                }
                completed.append(&mut done);
                self.rates_valid = false;
            } else if step == remaining {
                break;
            } else if step.is_zero() {
                // No completion and no progress possible: avoid spinning.
                break;
            }
        }
        Advance {
            now: self.now,
            completed,
        }
    }

    /// Runs until all finite flows complete or `horizon` is reached.
    pub fn run_until_drained(&mut self, horizon: SimTime) -> Advance {
        let dt = horizon.saturating_since(self.now);
        self.advance(dt)
    }

    /// Advances until every finite flow completes (infinite streams keep
    /// flowing), returning each completion with its instant, in order.
    ///
    /// Returns immediately if no finite flow is making progress.
    pub fn drain_completions(&mut self) -> Vec<(SimTime, FlowId)> {
        let mut out = Vec::new();
        // Each iteration completes at least one flow (the step is rounded
        // up to cover the residue); the guard is a defensive backstop.
        let mut guard = self.flows.len() * 2 + 16;
        while let Some(dt) = self.time_to_next_completion() {
            let adv = self.advance(dt);
            for id in adv.completed {
                out.push((adv.now, id));
            }
            guard -= 1;
            if guard == 0 {
                break;
            }
        }
        out
    }

    fn transfer_for(&mut self, dt: SimDuration) {
        let secs = dt.as_secs_f64();
        for st in self.flows.values_mut() {
            if st.spec.remaining_bytes.is_finite() {
                st.spec.remaining_bytes =
                    (st.spec.remaining_bytes - st.rate_bps * secs).max(0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1e6;

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut net = Network::new();
        let l = net.add_link(100.0 * MB);
        let rates = max_min_rates(&net, &[FlowSpec::new(vec![l], 1.0 * MB)]);
        assert!((rates[0] - 100.0 * MB).abs() < 1.0);
    }

    #[test]
    fn equal_flows_share_equally() {
        let mut net = Network::new();
        let l = net.add_link(90.0 * MB);
        let flows: Vec<FlowSpec> = (0..3).map(|_| FlowSpec::new(vec![l], MB)).collect();
        let rates = max_min_rates(&net, &flows);
        for r in rates {
            assert!((r - 30.0 * MB).abs() < 1.0);
        }
    }

    #[test]
    fn cap_limited_flow_frees_capacity_for_others() {
        let mut net = Network::new();
        let l = net.add_link(100.0 * MB);
        let flows = vec![
            FlowSpec::new(vec![l], MB).with_cap(10.0 * MB),
            FlowSpec::new(vec![l], MB),
        ];
        let rates = max_min_rates(&net, &flows);
        assert!((rates[0] - 10.0 * MB).abs() < 1.0);
        assert!((rates[1] - 90.0 * MB).abs() < 1.0);
    }

    #[test]
    fn weights_bias_shares() {
        let mut net = Network::new();
        let l = net.add_link(90.0 * MB);
        let flows = vec![
            FlowSpec::new(vec![l], MB).with_weight(2.0),
            FlowSpec::new(vec![l], MB).with_weight(1.0),
        ];
        let rates = max_min_rates(&net, &flows);
        assert!((rates[0] - 60.0 * MB).abs() < 1.0);
        assert!((rates[1] - 30.0 * MB).abs() < 1.0);
    }

    #[test]
    fn multi_link_bottleneck_is_respected() {
        // Flow A crosses fast+slow; flow B crosses fast only. A is limited
        // by slow; B then takes the rest of fast.
        let mut net = Network::new();
        let fast = net.add_link(100.0 * MB);
        let slow = net.add_link(20.0 * MB);
        let flows = vec![
            FlowSpec::new(vec![fast, slow], MB),
            FlowSpec::new(vec![fast], MB),
        ];
        let rates = max_min_rates(&net, &flows);
        assert!((rates[0] - 20.0 * MB).abs() < 1.0, "rates={rates:?}");
        assert!((rates[1] - 80.0 * MB).abs() < 1.0, "rates={rates:?}");
    }

    #[test]
    fn routeless_flow_is_cap_only() {
        let net = Network::new();
        let rates = max_min_rates(&net, &[FlowSpec::new(vec![], MB).with_cap(5.0 * MB)]);
        assert_eq!(rates[0], 5.0 * MB);
    }

    #[test]
    fn fluid_sim_completes_in_exact_time() {
        let mut net = Network::new();
        let l = net.add_link(10.0 * MB);
        let mut sim = FluidSim::new(net);
        let f = sim.add_flow(FlowSpec::new(vec![l], 20.0 * MB));
        let adv = sim.advance(SimDuration::from_secs(5));
        assert_eq!(adv.completed, vec![f]);
        // 20 MB at 10 MB/s -> completes at t=2s; sim then idles to 5s.
        assert_eq!(adv.now, SimTime::from_secs(5));
        assert_eq!(sim.active_flows(), 0);
    }

    #[test]
    fn fluid_sim_rate_reallocation_after_completion() {
        // Two equal flows: the first finishes, the second then doubles its
        // rate. 10 MB each at 10 MB/s total: both run at 5 MB/s; after 2s,
        // both have transferred 10... actually both complete at the same
        // time. Use unequal sizes instead.
        let mut net = Network::new();
        let l = net.add_link(10.0 * MB);
        let mut sim = FluidSim::new(net);
        let small = sim.add_flow(FlowSpec::new(vec![l], 5.0 * MB));
        let big = sim.add_flow(FlowSpec::new(vec![l], 15.0 * MB));
        // Phase 1: both at 5 MB/s. small done at t=1s. big has 10 MB left.
        // Phase 2: big at 10 MB/s, done at t=2s.
        let adv = sim.advance(SimDuration::from_secs(10));
        assert_eq!(adv.completed, vec![small, big]);
        assert_eq!(sim.now(), SimTime::from_secs(10));
        // Verify the completion happened at t=2s by re-running with a 2s
        // horizon.
        let mut net = Network::new();
        let l = net.add_link(10.0 * MB);
        let mut sim = FluidSim::new(net);
        sim.add_flow(FlowSpec::new(vec![l], 5.0 * MB));
        let big = sim.add_flow(FlowSpec::new(vec![l], 15.0 * MB));
        let adv = sim.advance(SimDuration::from_secs(2));
        assert!(adv.completed.contains(&big));
    }

    #[test]
    fn infinite_stream_consumes_share_but_never_completes() {
        let mut net = Network::new();
        let l = net.add_link(10.0 * MB);
        let mut sim = FluidSim::new(net);
        let stream = sim.add_flow(FlowSpec::new(vec![l], f64::INFINITY));
        let finite = sim.add_flow(FlowSpec::new(vec![l], 5.0 * MB));
        // Finite flow gets 5 MB/s -> completes at t=1s.
        let adv = sim.advance(SimDuration::from_secs(1));
        assert_eq!(adv.completed, vec![finite]);
        assert_eq!(sim.active_flows(), 1);
        assert!(sim.remaining(stream).unwrap().is_infinite());
        // Stream now gets the whole link.
        sim.recompute_rates();
        assert!((sim.rate(stream).unwrap() - 10.0 * MB).abs() < 1.0);
    }

    #[test]
    fn remove_flow_returns_outstanding_bytes() {
        let mut net = Network::new();
        let l = net.add_link(10.0 * MB);
        let mut sim = FluidSim::new(net);
        let f = sim.add_flow(FlowSpec::new(vec![l], 10.0 * MB));
        sim.advance(SimDuration::from_millis(500));
        let left = sim.remove_flow(f).unwrap();
        assert!((left - 5.0 * MB).abs() < 1.0, "left={left}");
        assert_eq!(sim.remove_flow(f), None);
    }

    #[test]
    fn backup_nic_saturation_shape() {
        // The Figure-7 phenomenon in miniature: per-VM checkpoint streams
        // capped at 3.2 MB/s over a 125 MB/s backup NIC. Up to 39 VMs each
        // stream runs at its cap; at 50 VMs the fair share drops below cap.
        for (vms, expect_capped) in [(10usize, true), (39, true), (50, false)] {
            let mut net = Network::new();
            let nic = net.add_link(125.0 * MB);
            let flows: Vec<FlowSpec> = (0..vms)
                .map(|_| FlowSpec::new(vec![nic], f64::INFINITY).with_cap(3.2 * MB))
                .collect();
            let rates = max_min_rates(&net, &flows);
            let per_vm = rates[0];
            if expect_capped {
                assert!(
                    (per_vm - 3.2 * MB).abs() < 1.0,
                    "{vms} VMs: expected capped rate, got {per_vm}"
                );
            } else {
                assert!(
                    per_vm < 3.2 * MB,
                    "{vms} VMs: expected saturated rate below cap, got {per_vm}"
                );
                assert!((per_vm - 125.0 * MB / vms as f64).abs() < 1.0);
            }
        }
    }

    #[test]
    fn zero_capacity_link_stalls_flows_without_panicking() {
        let mut net = Network::new();
        let dead = net.add_link(0.0);
        let rates = max_min_rates(&net, &[FlowSpec::new(vec![dead], MB)]);
        assert_eq!(rates[0], 0.0);

        let mut net = Network::new();
        let dead = net.add_link(0.0);
        let mut sim = FluidSim::new(net);
        let f = sim.add_flow(FlowSpec::new(vec![dead], MB));
        // A stalled flow makes no progress and never reports a completion.
        assert_eq!(sim.time_to_next_completion(), None);
        let adv = sim.advance(SimDuration::from_secs(10));
        assert!(adv.completed.is_empty());
        assert_eq!(sim.remaining(f), Some(MB));
    }

    #[test]
    fn crashing_a_link_mid_transfer_stalls_then_recovers() {
        let mut net = Network::new();
        let l = net.add_link(10.0 * MB);
        let mut sim = FluidSim::new(net);
        let f = sim.add_flow(FlowSpec::new(vec![l], 10.0 * MB));
        sim.advance(SimDuration::from_millis(500));
        // Server dies with 5 MB outstanding.
        sim.network_mut().set_capacity(l, 0.0);
        let adv = sim.advance(SimDuration::from_secs(5));
        assert!(adv.completed.is_empty());
        assert!((sim.remaining(f).unwrap() - 5.0 * MB).abs() < 1.0);
        // Server returns; the transfer finishes.
        sim.network_mut().set_capacity(l, 10.0 * MB);
        let adv = sim.advance(SimDuration::from_secs(1));
        assert_eq!(adv.completed, vec![f]);
    }

    #[test]
    fn link_load_tracks_allocated_rates() {
        let mut net = Network::new();
        let hot = net.add_link(10.0 * MB);
        let cold = net.add_link(10.0 * MB);
        let mut sim = FluidSim::new(net);
        sim.add_flow(FlowSpec::new(vec![hot], f64::INFINITY).with_cap(3.0 * MB));
        sim.add_flow(FlowSpec::new(vec![hot], f64::INFINITY).with_cap(4.0 * MB));
        assert!((sim.link_load(hot) - 7.0 * MB).abs() < 1.0);
        assert_eq!(sim.link_load(cold), 0.0);
    }

    #[test]
    fn empty_flow_set_is_harmless() {
        let mut sim = FluidSim::new(Network::new());
        assert_eq!(sim.time_to_next_completion(), None);
        let adv = sim.advance(SimDuration::from_secs(1));
        assert!(adv.completed.is_empty());
        assert_eq!(adv.now, SimTime::from_secs(1));
    }

    #[test]
    fn advance_zero_duration_is_noop() {
        let mut net = Network::new();
        let l = net.add_link(MB);
        let mut sim = FluidSim::new(net);
        sim.add_flow(FlowSpec::new(vec![l], MB));
        let adv = sim.advance(SimDuration::ZERO);
        assert!(adv.completed.is_empty());
        assert_eq!(adv.now, SimTime::ZERO);
    }
}
