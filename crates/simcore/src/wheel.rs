//! Hierarchical timing-wheel backend for [`crate::queue::EventQueue`].
//!
//! A binary heap pays O(log n) per push/pop with poor locality; at
//! fleet scale (hundreds of thousands of queued events) that log factor
//! and its cache misses dominate the simulation loop. The classic fix
//! (Varghese & Lauck) is a hierarchical timing wheel: O(1) amortized
//! push/pop by hashing each event's deadline into a slot of a wheel whose
//! levels cover geometrically growing horizons.
//!
//! ## Layout
//!
//! Six levels of 64 slots over integer microseconds. A level-`k` slot
//! spans `64^k` µs, so level `k` covers deadlines up to `64^(k+1)` µs
//! ahead of the wheel's `current` time; the whole wheel spans `64^6` µs
//! (~19.1 simulated hours). Deadlines beyond the span land in a sorted
//! **overflow** map (`BTreeMap<time, Vec<(seq, event)>>`) and are only
//! consulted through its first key — far-future events (rare: multi-hour
//! timers) pay O(log n), everything else O(1).
//!
//! ## Exact FIFO semantics
//!
//! The queue contract is strict `(time, seq)` order — pop order must be
//! bit-identical to the heap backend so every simulation replays
//! unchanged. Two wheel-specific hazards are handled:
//!
//! - **Cascade reordering.** When `current` advances to deadline `T`, the
//!   slot containing `T` at each upper level is drained top-down and its
//!   entries re-hashed against the new `current`. Entries arriving in a
//!   level-0 slot via cascade interleave arbitrarily with directly pushed
//!   ones, so the drained instant's entries are *sorted by seq* before
//!   being handed out.
//! - **Same-instant pushes during a batch.** Popping at `T` stages the
//!   merged, seq-sorted entries for `T` (level-0 slot + overflow bucket)
//!   in a `ready` deque. Handlers reacting to those events may push *more*
//!   events at `T`; monotonic seq allocation means appending them to the
//!   back of `ready` preserves exact order. A level-0 slot holds exactly
//!   one timestamp (entries enter it only when `deadline - current < 64`,
//!   and it is fully drained before `current` passes it), so staging a
//!   slot never mixes instants.
//!
//! Pushes must not be earlier than the last popped time — the same
//! invariant [`crate::engine::Scheduler::at`] already enforces — because a
//! wheel cannot rewind `current`.

use std::collections::{BTreeMap, VecDeque};

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const LEVELS: usize = 6;
/// Deadlines at least this far ahead of `current` go to the overflow map.
const SPAN: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// A hierarchical timing wheel over `(time µs, seq)`-ordered events.
///
/// This is the raw backend; [`crate::queue::EventQueue`] owns seq
/// allocation and the `SimTime` API.
#[derive(Debug, Clone)]
pub struct TimingWheel<E> {
    /// Time of the most recent pop (µs); never moves backwards.
    current: u64,
    /// `LEVELS * SLOTS` buckets, flattened; `(time, seq, event)` entries.
    slots: Vec<Vec<(u64, u64, E)>>,
    /// Per-slot minimum deadline, `u64::MAX` when empty.
    slot_min: Vec<u64>,
    /// Per-level minimum deadline (min over the level's `slot_min`).
    level_min: [u64; LEVELS],
    /// Far-future events, sorted by deadline; inner vecs are in seq order.
    overflow: BTreeMap<u64, Vec<(u64, E)>>,
    /// Seq-sorted entries staged for the instant `ready_time`.
    ready: VecDeque<(u64, E)>,
    ready_time: u64,
    len: usize,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl<E> TimingWheel<E> {
    /// Creates an empty wheel at time 0.
    pub fn new() -> Self {
        TimingWheel {
            current: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            slot_min: vec![u64::MAX; LEVELS * SLOTS],
            level_min: [u64::MAX; LEVELS],
            overflow: BTreeMap::new(),
            ready: VecDeque::new(),
            ready_time: 0,
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all events without resetting `current`.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.slot_min.fill(u64::MAX);
        self.level_min = [u64::MAX; LEVELS];
        self.overflow.clear();
        self.ready.clear();
        self.len = 0;
    }

    /// Schedules `event` at `time` with ordering ticket `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped time (the wheel
    /// cannot rewind; the engine never schedules into the past).
    pub fn push(&mut self, time: u64, seq: u64, event: E) {
        assert!(
            time >= self.current,
            "timing wheel cannot schedule into the past: t={time} < current={}",
            self.current
        );
        self.len += 1;
        // Same instant as the batch currently being popped: seqs are
        // monotonic, so appending keeps `ready` sorted.
        if !self.ready.is_empty() && time == self.ready_time {
            self.ready.push_back((seq, event));
            return;
        }
        self.place(time, seq, event);
    }

    /// Hashes an entry into its wheel level or the overflow map.
    fn place(&mut self, time: u64, seq: u64, event: E) {
        let dt = time - self.current;
        if dt >= SPAN {
            self.overflow.entry(time).or_default().push((seq, event));
            return;
        }
        // Level k covers dt in [64^k, 64^(k+1)); dt = 0 lands in level 0.
        let level = if dt == 0 {
            0
        } else {
            ((63 - dt.leading_zeros()) / SLOT_BITS) as usize
        };
        let slot = Self::slot_index(level, time);
        self.slots[slot].push((time, seq, event));
        if time < self.slot_min[slot] {
            self.slot_min[slot] = time;
        }
        if time < self.level_min[level] {
            self.level_min[level] = time;
        }
    }

    fn slot_index(level: usize, time: u64) -> usize {
        level * SLOTS + ((time >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// The earliest queued deadline, if any.
    pub fn peek_time(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if !self.ready.is_empty() {
            return Some(self.ready_time);
        }
        let mut min = u64::MAX;
        for &m in &self.level_min {
            min = min.min(m);
        }
        if let Some((&t, _)) = self.overflow.iter().next() {
            min = min.min(t);
        }
        Some(min)
    }

    /// Pops the earliest event (FIFO on equal deadlines by seq).
    pub fn pop(&mut self) -> Option<(u64, E)> {
        if self.ready.is_empty() {
            let target = self.peek_time()?;
            self.stage(target);
        }
        let (_, event) = self.ready.pop_front()?;
        self.len -= 1;
        Some((self.ready_time, event))
    }

    /// Advances to `target` and stages its merged, seq-sorted entries in
    /// `ready`.
    fn stage(&mut self, target: u64) {
        self.current = target;
        // Cascade top-down: drain the slot containing `target` at each
        // upper level and re-hash its entries against the advanced
        // `current`. Every drained deadline is >= target (anything earlier
        // would have been the pop target), and < slot_end <= target +
        // 64^level, so each entry re-places at a strictly lower level and
        // the loop terminates.
        for level in (1..LEVELS).rev() {
            if self.level_min[level] > target {
                continue;
            }
            let slot = Self::slot_index(level, target);
            if !self.slots[slot].is_empty() {
                let entries = std::mem::take(&mut self.slots[slot]);
                self.slot_min[slot] = u64::MAX;
                for (time, seq, event) in entries {
                    self.place(time, seq, event);
                }
            }
            self.recompute_level_min(level);
        }
        // The level-0 slot for `target` now holds every wheel-resident
        // entry at that instant (single-timestamp invariant), and the
        // overflow bucket (if its front key is `target`) holds the rest.
        let slot = Self::slot_index(0, target);
        let mut staged: Vec<(u64, E)> = std::mem::take(&mut self.slots[slot])
            .into_iter()
            .map(|(time, seq, event)| {
                debug_assert_eq!(time, target, "level-0 slot mixes instants");
                (seq, event)
            })
            .collect();
        self.slot_min[slot] = u64::MAX;
        self.recompute_level_min(0);
        if let Some(entry) = self.overflow.first_entry() {
            if *entry.key() == target {
                staged.extend(entry.remove());
            }
        }
        // Direct pushes, cascaded entries, and overflow arrivals interleave
        // arbitrarily; seq order restores the exact global FIFO.
        staged.sort_unstable_by_key(|&(seq, _)| seq);
        self.ready = staged.into();
        self.ready_time = target;
    }

    fn recompute_level_min(&mut self, level: usize) {
        let base = level * SLOTS;
        let mut min = u64::MAX;
        for &m in &self.slot_min[base..base + SLOTS] {
            min = min.min(m);
        }
        self.level_min[level] = min;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimingWheel<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some(x) = w.pop() {
            out.push(x);
        }
        out
    }

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut w = TimingWheel::new();
        // One deadline per level, pushed out of order, plus one overflow.
        let times = [
            5u64,
            70,
            5_000,
            300_000,
            20_000_000,
            1_500_000_000,
            SPAN + 123,
        ];
        for (seq, &t) in times.iter().rev().enumerate() {
            w.push(t, seq as u64, t as u32);
        }
        assert_eq!(w.len(), times.len());
        let popped = drain(&mut w);
        let sorted: Vec<u64> = {
            let mut s = times.to_vec();
            s.sort();
            s
        };
        assert_eq!(popped.iter().map(|&(t, _)| t).collect::<Vec<_>>(), sorted);
        assert!(w.is_empty());
    }

    #[test]
    fn equal_deadlines_pop_in_seq_order() {
        let mut w = TimingWheel::new();
        w.push(100, 0, 0);
        w.push(100, 1, 1);
        w.push(40, 2, 2);
        assert_eq!(w.pop(), Some((40, 2)));
        w.push(100, 3, 3);
        assert_eq!(drain(&mut w), vec![(100, 0), (100, 1), (100, 3)]);
    }

    #[test]
    fn same_instant_push_during_batch_appends() {
        let mut w = TimingWheel::new();
        w.push(10, 0, 0);
        w.push(10, 1, 1);
        assert_eq!(w.pop(), Some((10, 0)));
        // Handler reacting to the first pop schedules "immediately".
        w.push(10, 2, 2);
        assert_eq!(w.pop(), Some((10, 1)));
        assert_eq!(w.pop(), Some((10, 2)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn cascaded_and_direct_pushes_merge_by_seq() {
        let mut w = TimingWheel::new();
        // seq 0 goes to an upper level (dt = 100 -> level 1).
        w.push(100, 0, 0);
        // Advance near the deadline, then push the same instant directly
        // into level 0 with a later seq.
        w.push(60, 1, 9);
        assert_eq!(w.pop(), Some((60, 9)));
        w.push(100, 2, 2);
        // The cascaded seq-0 entry must still pop before the direct seq-2.
        assert_eq!(drain(&mut w), vec![(100, 0), (100, 2)]);
    }

    #[test]
    fn overflow_merges_with_wheel_resident_same_instant() {
        let mut w = TimingWheel::new();
        let t = SPAN + 10;
        w.push(t, 0, 0); // overflow (dt >= SPAN)
        w.push(t - SPAN / 2, 1, 1);
        assert_eq!(w.pop(), Some((t - SPAN / 2, 1)));
        // Now t is within the span; this push is wheel-resident.
        w.push(t, 2, 2);
        assert_eq!(drain(&mut w), vec![(t, 0), (t, 2)]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut w = TimingWheel::new();
        assert_eq!(w.peek_time(), None);
        w.push(42, 0, 7);
        assert_eq!(w.peek_time(), Some(42));
        assert_eq!(w.peek_time(), Some(42));
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some((42, 7)));
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    fn clear_empties() {
        let mut w = TimingWheel::new();
        w.push(1, 0, 0);
        w.push(SPAN * 2, 1, 1);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.pop(), None);
        // Still usable after clear.
        w.push(5, 2, 5);
        assert_eq!(w.pop(), Some((5, 5)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_push_before_last_pop() {
        let mut w = TimingWheel::new();
        w.push(100, 0, 0);
        w.pop();
        w.push(50, 1, 1);
    }

    #[test]
    fn randomized_matches_sorted_reference() {
        // Deterministic splitmix64 schedule with clustered instants and
        // horizon-spanning deadlines.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut w = TimingWheel::new();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut last_pop = 0u64;
        for seq in 0..2_000u64 {
            let r = next();
            let dt = match r % 5 {
                0 => 0,
                1 => r % 64,
                2 => r % 10_000,
                3 => r % SPAN,
                _ => SPAN + r % 1_000_000,
            };
            let t = last_pop + dt;
            w.push(t, seq, seq as u32);
            reference.push((t, seq));
            if seq % 3 == 0 {
                if let Some((t, payload)) = w.pop() {
                    reference.sort();
                    let (rt, rs) = reference.remove(0);
                    assert_eq!((t, payload), (rt, rs as u32));
                    last_pop = t;
                }
            }
        }
        while let Some((t, payload)) = w.pop() {
            reference.sort();
            let (rt, rs) = reference.remove(0);
            assert_eq!((t, payload), (rt, rs as u32));
        }
        assert!(reference.is_empty());
    }
}
