//! Deterministic fork-join parallelism on std threads.
//!
//! The build environment carries no external crates, so this module is the
//! reproduction's stand-in for `rayon`: an ordered parallel map over owned
//! items with work stealing via an atomic cursor. The determinism contract
//! the experiment harness relies on:
//!
//! - **Ordered collection** — results come back in input order no matter
//!   which worker ran which item or in what sequence they finished.
//! - **No shared RNG** — `f` receives the item index, so callers derive any
//!   randomness from `(seed, index)` rather than from execution order.
//! - **Event accounting** — [`crate::metrics`] counts recorded by workers
//!   are folded back into the calling thread when the scope joins, so a
//!   `metrics::measure` around a parallel region sees all of its work.
//!
//! With `threads <= 1` (or a single item) everything runs inline on the
//! caller's thread; output is byte-identical either way.
//!
//! # Why scoped spawns, not the persistent pool?
//!
//! [`crate::pool`] exists precisely because per-call spawning is too
//! expensive for the sharded engine's microsecond-scale epoch windows.
//! This module deliberately keeps scoped spawns anyway: its callers (the
//! experiment registry, the policy grid, the trace fleet) fan out items
//! that each run for milliseconds to minutes, so one spawn per worker per
//! call is noise — and scoped spawns borrow the caller's stack directly,
//! needing no `'static` bounds, no job channel, and no process-wide pool
//! lifecycle to share between nested fan-outs. The two regimes get the
//! two mechanisms they are each best at.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::metrics;

/// Returns the machine's available parallelism (at least 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Process-wide worker cap; 0 means "auto" ([`default_threads`]).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count used by [`configured_threads`]
/// (the experiments CLI's `--threads N`; `0` restores auto-detection).
///
/// This only resizes worker pools — parallel output is identical at every
/// setting, so it is a performance knob, never a correctness one.
///
/// # Long-running hosts
///
/// The cap is freely rebindable and is read at each `parallel_map` call,
/// not latched into any long-lived structure, so a daemon hosting several
/// engine lifetimes can adjust it between (but not during) fan-outs
/// without corrupting state. Compare [`crate::queue::set_default_backend`],
/// which *is* latched per queue at construction: engines that must stay
/// immune to rebinds pin their backend explicitly via
/// [`crate::queue::EventQueue::with_backend`].
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::SeqCst);
}

/// Returns the configured process-wide worker count: the value set via
/// [`set_max_threads`], or [`default_threads`] when unset.
pub fn configured_threads() -> usize {
    match MAX_THREADS.load(Ordering::SeqCst) {
        0 => default_threads(),
        n => n,
    }
}

/// Maps `f(index, item)` over `items` on the process-wide configured
/// worker count ([`configured_threads`]), returning results in input
/// order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    parallel_map_indexed(configured_threads(), items, f)
}

/// Maps `f(index, item)` over `items` on up to `threads` workers and
/// returns the results in input order.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn parallel_map_indexed<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // One shared work queue instead of a Mutex<Option<T>> per item: a
    // worker takes the lock only long enough to pull the next (index,
    // item) pair, runs `f` unlocked, and keeps its results in a private
    // Vec returned through the join handle.
    let queue: Mutex<std::iter::Enumerate<std::vec::IntoIter<T>>> =
        Mutex::new(items.into_iter().enumerate());
    let mut merged: Vec<(usize, R)> = Vec::with_capacity(n);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let next = queue.lock().expect("work queue poisoned").next();
                        let Some((i, item)) = next else { break };
                        out.push((i, f(i, item)));
                    }
                    (out, metrics::events(), metrics::peak_queue_depth())
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok((out, events, peak)) => {
                    merged.extend(out);
                    // Fold worker-side simulation-event counts (and the
                    // max observed queue depth) into the caller's counters
                    // so an enclosing metrics::measure still attributes
                    // this region's work.
                    metrics::fold_worker(events, peak);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    assert_eq!(merged.len(), n, "every index produces exactly one result");
    // Ordered collection: indexes are unique, so the unstable sort is
    // deterministic and restores input order exactly.
    merged.sort_unstable_by_key(|&(i, _)| i);
    merged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 4, 8] {
            let out = parallel_map_indexed(threads, (0..100).collect(), |i, x: u64| {
                // Uneven work so completion order scrambles under contention.
                let spin = (x * 7919) % 257;
                let mut acc = 0u64;
                for k in 0..spin {
                    acc = acc.wrapping_add(k);
                }
                (i as u64, x * 2, acc)
            });
            for (i, (idx, doubled, _)) in out.iter().enumerate() {
                assert_eq!(*idx, i as u64);
                assert_eq!(*doubled, 2 * i as u64);
            }
        }
    }

    #[test]
    fn identical_output_at_any_thread_count() {
        let run = |threads| {
            parallel_map_indexed(threads, (0..50u64).collect(), |i, x| {
                let mut rng = crate::rng::SimRng::seed(42).fork(i as u64);
                (x, rng.next_u64())
            })
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), serial);
        }
    }

    #[test]
    fn folds_worker_event_counts_into_caller() {
        let (_, n) = metrics::measure(|| {
            parallel_map_indexed(4, (0..10u64).collect(), |_, x| {
                metrics::add(x);
            });
        });
        assert_eq!(n, (0..10u64).sum());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u64> = parallel_map_indexed(4, Vec::<u64>::new(), |_, x| x);
        assert!(empty.is_empty());
        let one = parallel_map_indexed(4, vec![9u64], |i, x| x + i as u64);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
