//! Deterministic fork-join parallelism on std threads.
//!
//! The build environment carries no external crates, so this module is the
//! reproduction's stand-in for `rayon`: an ordered parallel map over owned
//! items with work stealing via an atomic cursor. The determinism contract
//! the experiment harness relies on:
//!
//! - **Ordered collection** — results come back in input order no matter
//!   which worker ran which item or in what sequence they finished.
//! - **No shared RNG** — `f` receives the item index, so callers derive any
//!   randomness from `(seed, index)` rather than from execution order.
//! - **Event accounting** — [`crate::metrics`] counts recorded by workers
//!   are folded back into the calling thread when the scope joins, so a
//!   `metrics::measure` around a parallel region sees all of its work.
//!
//! With `threads <= 1` (or a single item) everything runs inline on the
//! caller's thread; output is byte-identical either way.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::metrics;

/// Returns the machine's available parallelism (at least 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Process-wide worker cap; 0 means "auto" ([`default_threads`]).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count used by [`configured_threads`]
/// (the experiments CLI's `--threads N`; `0` restores auto-detection).
///
/// This only resizes worker pools — parallel output is identical at every
/// setting, so it is a performance knob, never a correctness one.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::SeqCst);
}

/// Returns the configured process-wide worker count: the value set via
/// [`set_max_threads`], or [`default_threads`] when unset.
pub fn configured_threads() -> usize {
    match MAX_THREADS.load(Ordering::SeqCst) {
        0 => default_threads(),
        n => n,
    }
}

/// Maps `f(index, item)` over `items` on the process-wide configured
/// worker count ([`configured_threads`]), returning results in input
/// order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    parallel_map_indexed(configured_threads(), items, f)
}

/// Maps `f(index, item)` over `items` on up to `threads` workers and
/// returns the results in input order.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn parallel_map_indexed<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let mut worker_events: u64 = 0;
    let mut worker_peak: u64 = 0;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("item slot poisoned")
                            .take()
                            .expect("each item is claimed exactly once");
                        let out = f(i, item);
                        *results[i].lock().expect("result slot poisoned") = Some(out);
                    }
                    (metrics::events(), metrics::peak_queue_depth())
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok((events, peak)) => {
                    worker_events = worker_events.wrapping_add(events);
                    worker_peak = worker_peak.max(peak);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    // Fold worker-side simulation-event counts (and the max observed queue
    // depth) into the caller's counters so an enclosing metrics::measure
    // still attributes this region's work.
    metrics::add(worker_events);
    metrics::note_queue_depth(worker_peak);

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 4, 8] {
            let out = parallel_map_indexed(threads, (0..100).collect(), |i, x: u64| {
                // Uneven work so completion order scrambles under contention.
                let spin = (x * 7919) % 257;
                let mut acc = 0u64;
                for k in 0..spin {
                    acc = acc.wrapping_add(k);
                }
                (i as u64, x * 2, acc)
            });
            for (i, (idx, doubled, _)) in out.iter().enumerate() {
                assert_eq!(*idx, i as u64);
                assert_eq!(*doubled, 2 * i as u64);
            }
        }
    }

    #[test]
    fn identical_output_at_any_thread_count() {
        let run = |threads| {
            parallel_map_indexed(threads, (0..50u64).collect(), |i, x| {
                let mut rng = crate::rng::SimRng::seed(42).fork(i as u64);
                (x, rng.next_u64())
            })
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), serial);
        }
    }

    #[test]
    fn folds_worker_event_counts_into_caller() {
        let (_, n) = metrics::measure(|| {
            parallel_map_indexed(4, (0..10u64).collect(), |_, x| {
                metrics::add(x);
            });
        });
        assert_eq!(n, (0..10u64).sum());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u64> = parallel_map_indexed(4, Vec::<u64>::new(), |_, x| x);
        assert!(empty.is_empty());
        let one = parallel_map_indexed(4, vec![9u64], |i, x| x + i as u64);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
