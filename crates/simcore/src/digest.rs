//! Incremental 64-bit state digests.
//!
//! A tiny, dependency-free hasher for fingerprinting simulation state:
//! snapshot signatures, scenario digests, and differential checks all need
//! a stable, order-sensitive checksum over heterogeneous fields (ids,
//! counts, floats, labels). The construction is FNV-1a over the byte
//! stream with a splitmix64 finalizer, which is plenty for corruption
//! detection (these digests guard against *divergence*, not adversaries).
//!
//! The digest is deliberately order-sensitive: hashing the same fields in
//! a different order yields a different value, so callers must enumerate
//! state in a deterministic order (the simulation's own determinism
//! discipline already guarantees one).

/// An incremental 64-bit digest (FNV-1a core, splitmix64 finalizer).
#[derive(Debug, Clone)]
pub struct Digest64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Digest64 {
    fn default() -> Self {
        Digest64::new()
    }
}

impl Digest64 {
    /// Creates a digest in its initial state.
    pub fn new() -> Self {
        Digest64 { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64` as one whole-word FNV step (xor, then multiply).
    ///
    /// This is the bulk-throughput variant: one multiply per eight bytes
    /// instead of eight, which matters when digesting multi-megabyte
    /// archives. The absorb step is bijective in `v` (the prime is odd),
    /// so any change to a fed word still always changes the digest. The
    /// resulting stream is deliberately *not* compatible with feeding the
    /// same bytes through [`write_bytes`]/[`write_u64`]; callers pick one
    /// framing and stick to it.
    #[inline]
    pub fn absorb_u64(&mut self, v: u64) {
        self.state ^= v;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Feeds a `usize` (as `u64`).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a boolean (as one byte).
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// Feeds an `f64` by its exact bit pattern (`-0.0` and `0.0` differ;
    /// NaNs hash by payload — simulation state never holds NaN).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// digest differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Finishes the digest (the accumulator survives, so more fields can
    /// still be fed and `finish` called again).
    pub fn finish(&self) -> u64 {
        // splitmix64 finalizer: spreads the FNV accumulator's entropy over
        // all 64 bits so truncations of the digest stay well-mixed.
        let mut z = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One-shot digest of a `u64` sequence.
pub fn digest_u64s(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut d = Digest64::new();
    for v in values {
        d.write_u64(v);
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Digest64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Digest64::new();
        b.write_u64(1);
        b.write_u64(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = Digest64::new();
        c.write_u64(2);
        c.write_u64(1);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn strings_are_length_prefixed() {
        let mut a = Digest64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Digest64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_bits_distinguish_signed_zero() {
        let mut a = Digest64::new();
        a.write_f64(0.0);
        let mut b = Digest64::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn one_shot_helper_matches_incremental() {
        let mut d = Digest64::new();
        d.write_u64(7);
        d.write_u64(9);
        assert_eq!(digest_u64s([7, 9]), d.finish());
    }

    #[test]
    fn empty_digest_is_stable() {
        assert_eq!(Digest64::new().finish(), Digest64::new().finish());
    }
}
