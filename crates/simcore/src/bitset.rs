//! A fixed-capacity bit set.
//!
//! Used to track dirty/resident pages of nested-VM memory images. A 4 GiB VM
//! has ~1M 4 KiB pages, i.e. 128 KiB of bitset — cheap while a VM is actually
//! migrating, but fatal as a fixed per-VM cost at million-VM fleet scale
//! (128 KiB x 1M VMs = 128 GiB). The word array is therefore allocated
//! lazily: an all-clear set owns no memory, and `clear_all` releases the
//! allocation, so only VMs with page-granular state in flight pay for it.

/// A fixed-capacity set of bits indexed `0..len`.
#[derive(Debug, Clone, Eq)]
pub struct BitSet {
    /// Either empty (the set is all-clear and owns no memory) or exactly
    /// `len.div_ceil(64)` words. Readers treat empty as all-zero.
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len || self.ones != other.ones {
            return false;
        }
        // Equal `ones`: if either side is unallocated both are all-clear
        // (ones == 0), whatever the other side's allocation state.
        if self.words.is_empty() || other.words.is_empty() {
            return true;
        }
        self.words == other.words
    }
}

impl BitSet {
    /// Creates a set of `len` bits, all clear. Allocation is deferred to
    /// the first mutation that sets a bit.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: Vec::new(),
            len,
            ones: 0,
        }
    }

    /// Materializes the word array (all-zero) if it is not allocated yet.
    fn ensure_words(&mut self) {
        if self.words.is_empty() && self.len > 0 {
            self.words = vec![0; self.len.div_ceil(64)];
        }
    }

    /// Creates a set of `len` bits, all set.
    pub fn all_set(len: usize) -> Self {
        let mut s = BitSet {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
            ones: len,
        };
        s.mask_tail();
        s
    }

    /// Clears any bits beyond `len` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Returns the capacity in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the number of set bits.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Returns the number of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.ones
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "BitSet index {i} out of range {}", self.len);
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Sets bit `i`; returns true if it was previously clear.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.len, "BitSet index {i} out of range {}", self.len);
        self.ensure_words();
        let mask = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        if *word & mask == 0 {
            *word |= mask;
            self.ones += 1;
            true
        } else {
            false
        }
    }

    /// Clears bit `i`; returns true if it was previously set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn clear(&mut self, i: usize) -> bool {
        assert!(i < self.len, "BitSet index {i} out of range {}", self.len);
        if self.words.is_empty() {
            return false;
        }
        let mask = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        if *word & mask != 0 {
            *word &= !mask;
            self.ones -= 1;
            true
        } else {
            false
        }
    }

    /// Clears every bit, releasing the backing allocation.
    pub fn clear_all(&mut self) {
        self.words = Vec::new();
        self.ones = 0;
    }

    /// Sets every bit.
    pub fn set_all(&mut self) {
        self.ensure_words();
        self.words.fill(u64::MAX);
        self.ones = self.len;
        self.mask_tail();
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(move |(wi, &w)| {
                let mut w = w;
                std::iter::from_fn(move || {
                    if w == 0 {
                        None
                    } else {
                        let bit = w.trailing_zeros() as usize;
                        w &= w - 1;
                        Some(wi * 64 + bit)
                    }
                })
            })
    }

    /// Returns the index of the first set bit at or after `from`, if any.
    pub fn next_one(&self, from: usize) -> Option<usize> {
        if from >= self.len || self.words.is_empty() {
            return None;
        }
        let mut wi = from / 64;
        let mut w = self.words[wi] & (u64::MAX << (from % 64));
        loop {
            if w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                return if idx < self.len { Some(idx) } else { None };
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            w = self.words[wi];
        }
    }

    /// Returns the index of the first clear bit at or after `from`, if any.
    pub fn next_zero(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        if self.words.is_empty() {
            return Some(from);
        }
        let mut wi = from / 64;
        let mut w = !self.words[wi] & (u64::MAX << (from % 64));
        loop {
            if w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                return if idx < self.len { Some(idx) } else { None };
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            w = !self.words[wi];
        }
    }

    /// Sets every bit that is set in `other` (`self |= other`).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch in union");
        if other.ones == 0 {
            return;
        }
        self.ensure_words();
        let mut ones = 0;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
            ones += a.count_ones() as usize;
        }
        self.ones = ones;
    }

    /// Clears every bit that is set in `other` (`self &= !other`).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch in subtract");
        if self.ones == 0 || other.ones == 0 {
            return;
        }
        let mut ones = 0;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
            ones += a.count_ones() as usize;
        }
        self.ones = ones;
    }

    /// Returns the number of bits set in both `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "BitSet capacity mismatch");
        if self.ones == 0 || other.ones == 0 {
            return 0;
        }
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Moves all set bits from `other` into `self`, clearing `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn drain_from(&mut self, other: &mut BitSet) {
        self.union_with(other);
        other.clear_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut s = BitSet::new(130);
        assert!(!s.get(0));
        assert!(s.set(0));
        assert!(!s.set(0), "setting twice reports already set");
        assert!(s.set(64));
        assert!(s.set(129));
        assert_eq!(s.count_ones(), 3);
        assert!(s.get(129));
        assert!(s.clear(64));
        assert!(!s.clear(64));
        assert_eq!(s.count_ones(), 2);
        assert_eq!(s.count_zeros(), 128);
    }

    #[test]
    fn all_set_masks_tail() {
        let s = BitSet::all_set(70);
        assert_eq!(s.count_ones(), 70);
        assert_eq!(s.iter_ones().count(), 70);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut s = BitSet::new(200);
        for i in [3, 64, 65, 130, 199] {
            s.set(i);
        }
        let ones: Vec<usize> = s.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 65, 130, 199]);
    }

    #[test]
    fn next_one_and_zero_scan() {
        let mut s = BitSet::new(100);
        s.set(10);
        s.set(64);
        assert_eq!(s.next_one(0), Some(10));
        assert_eq!(s.next_one(10), Some(10));
        assert_eq!(s.next_one(11), Some(64));
        assert_eq!(s.next_one(65), None);
        assert_eq!(s.next_zero(10), Some(11));
        let full = BitSet::all_set(66);
        assert_eq!(full.next_zero(0), None);
        assert_eq!(full.next_one(66), None);
    }

    #[test]
    fn union_and_subtract_track_counts() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.set(1);
        a.set(2);
        b.set(2);
        b.set(3);
        a.union_with(&b);
        assert_eq!(a.count_ones(), 3);
        assert_eq!(a.intersection_count(&b), 2);
        a.subtract(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn drain_from_moves_bits() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        b.set(7);
        a.drain_from(&mut b);
        assert!(a.get(7));
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn set_all_then_clear_all() {
        let mut s = BitSet::new(70);
        s.set_all();
        assert_eq!(s.count_ones(), 70);
        s.clear_all();
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let s = BitSet::new(10);
        s.get(10);
    }

    #[test]
    fn lazy_allocation_is_invisible() {
        // A never-touched set and a set-then-cleared set (allocated,
        // zeroed words) are semantically equal.
        let fresh = BitSet::new(200);
        let mut touched = BitSet::new(200);
        touched.set(77);
        touched.clear(77);
        assert_eq!(fresh, touched);
        assert_eq!(touched, fresh);
        // Reads on an unallocated set see all-clear.
        assert!(!fresh.get(199));
        assert_eq!(fresh.next_one(0), None);
        assert_eq!(fresh.next_zero(13), Some(13));
        assert_eq!(fresh.count_ones(), 0);
        // clear / subtract / union with an all-clear operand never allocate
        // or change anything.
        let mut a = BitSet::new(200);
        assert!(!a.clear(5));
        a.union_with(&fresh);
        a.subtract(&fresh);
        assert_eq!(a.intersection_count(&fresh), 0);
        assert_eq!(a, fresh);
        // union into an unallocated destination materializes it.
        a.union_with(&touched); // touched is all-clear: still no-op
        let mut b = BitSet::new(200);
        b.set(3);
        a.union_with(&b);
        assert!(a.get(3));
    }

    #[test]
    fn clear_all_releases_and_set_reallocates() {
        let mut s = BitSet::new(130);
        s.set_all();
        assert_eq!(s.count_ones(), 130);
        s.clear_all();
        assert_eq!(s, BitSet::new(130));
        assert!(s.set(129));
        assert_eq!(s.count_ones(), 1);
        assert_eq!(s.next_one(0), Some(129));
    }

    #[test]
    fn zero_capacity_behaves() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.next_one(0), None);
        assert_eq!(s.iter_ones().count(), 0);
    }
}
