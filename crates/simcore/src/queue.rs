//! Deterministic event queue.
//!
//! A priority queue of timestamped events. Events scheduled for the same
//! instant pop in insertion order (FIFO), which makes simulations
//! deterministic regardless of how the underlying structure happens to
//! order equal keys.
//!
//! Two interchangeable backends implement the contract:
//!
//! - [`QueueBackend::Heap`] — a binary heap of `(time, seq)`-reversed
//!   entries; O(log n) per operation, zero assumptions about push times.
//! - [`QueueBackend::Wheel`] — a hierarchical timing wheel
//!   ([`crate::wheel::TimingWheel`]); O(1) amortized push/pop at fleet
//!   scale, requiring only that pushes never land before the last popped
//!   time (the engine's scheduler already guarantees this).
//!
//! Both produce bit-identical pop sequences (pinned by a seeded
//! differential test), so the backend is purely a performance knob:
//! process-wide via [`set_default_backend`] (the experiments CLI's
//! `--queue heap|wheel`), or per-queue via [`EventQueue::with_backend`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};

use crate::time::SimTime;
use crate::wheel::TimingWheel;

/// Selects the data structure behind an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueBackend {
    /// Binary heap (the original backend; kept for differential testing).
    Heap,
    /// Hierarchical timing wheel (O(1) amortized; the default).
    Wheel,
}

impl QueueBackend {
    /// Display label (also the CLI spelling).
    pub fn label(self) -> &'static str {
        match self {
            QueueBackend::Heap => "heap",
            QueueBackend::Wheel => "wheel",
        }
    }
}

impl std::str::FromStr for QueueBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" => Ok(QueueBackend::Heap),
            "wheel" => Ok(QueueBackend::Wheel),
            other => Err(format!("unknown queue backend {other:?} (heap|wheel)")),
        }
    }
}

/// Process-wide default backend: 0 = wheel, 1 = heap.
static DEFAULT_BACKEND: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide backend used by [`EventQueue::new`].
///
/// Purely a performance knob — both backends pop bit-identical sequences —
/// exposed so the experiments CLI (`--queue`) and the differential tests
/// can switch an entire simulation run without plumbing a parameter
/// through every constructor.
///
/// # Long-running hosts
///
/// The default is latched by each [`EventQueue::new`] at construction
/// time: rebinding it never reconfigures an existing queue, only queues
/// built afterwards. A daemon hosting several engine lifetimes should
/// treat this as a construction-time default — pin the backend explicitly
/// per engine (via [`EventQueue::with_backend`]) so a later rebind, e.g.
/// by a concurrently running bench harness in the same process, cannot
/// make two engines of one deployment disagree about their configuration.
pub fn set_default_backend(backend: QueueBackend) {
    let v = match backend {
        QueueBackend::Wheel => 0,
        QueueBackend::Heap => 1,
    };
    DEFAULT_BACKEND.store(v, AtomicOrdering::SeqCst);
}

/// The process-wide default backend ([`QueueBackend::Wheel`] unless
/// overridden via [`set_default_backend`]).
pub fn default_backend() -> QueueBackend {
    match DEFAULT_BACKEND.load(AtomicOrdering::SeqCst) {
        1 => QueueBackend::Heap,
        _ => QueueBackend::Wheel,
    }
}

/// A timestamped entry in the heap backend.
///
/// Ordered so that the *earliest* time is the *greatest* entry (so it sits at
/// the top of the max-heap), with the insertion sequence number breaking
/// ties in FIFO order.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller (time, seq) compares greater, so it pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

enum Backend<E> {
    Heap(BinaryHeap<Entry<E>>),
    Wheel(TimingWheel<E>),
}

/// A deterministic time-ordered event queue.
///
/// # Examples
///
/// ```
/// use spotcheck_simcore::queue::EventQueue;
/// use spotcheck_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the process-wide default backend
    /// ([`default_backend`]).
    pub fn new() -> Self {
        Self::with_backend(default_backend())
    }

    /// Creates an empty queue on an explicit backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        let backend = match backend {
            QueueBackend::Heap => Backend::Heap(BinaryHeap::new()),
            QueueBackend::Wheel => Backend::Wheel(TimingWheel::new()),
        };
        EventQueue {
            backend,
            next_seq: 0,
        }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match &self.backend {
            Backend::Heap(_) => QueueBackend::Heap,
            Backend::Wheel(_) => QueueBackend::Wheel,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(Entry { time, seq, event }),
            Backend::Wheel(wheel) => wheel.push(time.as_micros(), seq, event),
        }
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let popped = match &mut self.backend {
            Backend::Heap(heap) => heap.pop().map(|e| (e.time, e.event)),
            Backend::Wheel(wheel) => wheel
                .pop()
                .map(|(t, e)| (SimTime::from_micros(t), e)),
        };
        if popped.is_some() {
            crate::metrics::add(1);
        }
        popped
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(heap) => heap.peek().map(|e| e.time),
            Backend::Wheel(wheel) => wheel.peek_time().map(SimTime::from_micros),
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Wheel(wheel) => wheel.len(),
        }
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(heap) => heap.clear(),
            Backend::Wheel(wheel) => wheel.clear(),
        }
    }

    /// Drains all events at the earliest pending instant into `batch`
    /// (cleared first), in FIFO order, and returns that instant.
    ///
    /// This is the allocation-free variant of [`EventQueue::pop_batch`]:
    /// per-instant callers (e.g. batch-dispatching engines) reuse one
    /// buffer across instants instead of allocating a fresh `Vec` each
    /// time.
    ///
    /// Returns `None` (leaving `batch` cleared) if the queue is empty.
    pub fn pop_batch_into(&mut self, batch: &mut Vec<E>) -> Option<SimTime> {
        batch.clear();
        let t = self.peek_time()?;
        match &mut self.backend {
            Backend::Heap(heap) => {
                while heap.peek().map(|e| e.time) == Some(t) {
                    batch.push(heap.pop().expect("peeked entry must exist").event);
                }
            }
            Backend::Wheel(wheel) => {
                let raw = t.as_micros();
                while wheel.peek_time() == Some(raw) {
                    batch.push(wheel.pop().expect("peeked entry must exist").1);
                }
            }
        }
        crate::metrics::add(batch.len() as u64);
        Some(t)
    }

    /// Drains and returns all events at the earliest pending instant,
    /// in FIFO order, along with that instant.
    ///
    /// Allocates a fresh `Vec` per call; prefer
    /// [`EventQueue::pop_batch_into`] on hot paths.
    ///
    /// Returns `None` if the queue is empty.
    pub fn pop_batch(&mut self) -> Option<(SimTime, Vec<E>)> {
        let mut batch = Vec::new();
        let t = self.pop_batch_into(&mut batch)?;
        Some((t, batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_backends() -> [EventQueue<i32>; 2] {
        [
            EventQueue::with_backend(QueueBackend::Heap),
            EventQueue::with_backend(QueueBackend::Wheel),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in [
            EventQueue::with_backend(QueueBackend::Heap),
            EventQueue::with_backend(QueueBackend::Wheel),
        ] {
            q.push(SimTime::from_secs(3), 'c');
            q.push(SimTime::from_secs(1), 'a');
            q.push(SimTime::from_secs(2), 'b');
            let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec!['a', 'b', 'c']);
        }
    }

    #[test]
    fn ties_break_fifo() {
        for mut q in both_backends() {
            let t = SimTime::from_secs(1);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn interleaved_ties_stay_fifo() {
        for backend in [QueueBackend::Heap, QueueBackend::Wheel] {
            let mut q = EventQueue::with_backend(backend);
            let t1 = SimTime::from_secs(1);
            let t2 = SimTime::from_secs(2);
            q.push(t2, "b1");
            q.push(t1, "a1");
            q.push(t2, "b2");
            q.push(t1, "a2");
            let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec!["a1", "a2", "b1", "b2"]);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        for backend in [QueueBackend::Heap, QueueBackend::Wheel] {
            let mut q = EventQueue::with_backend(backend);
            q.push(SimTime::from_secs(1), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
            q.pop();
            assert_eq!(q.peek_time(), None);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn pop_batch_groups_same_instant() {
        for mut q in both_backends() {
            let t1 = SimTime::from_secs(1);
            q.push(t1, 1);
            q.push(t1, 2);
            q.push(SimTime::from_secs(2), 3);
            assert_eq!(q.pop_batch(), Some((t1, vec![1, 2])));
            assert_eq!(q.pop_batch(), Some((SimTime::from_secs(2), vec![3])));
            assert_eq!(q.pop_batch(), None);
        }
    }

    #[test]
    fn pop_batch_into_reuses_buffer() {
        for mut q in both_backends() {
            let t1 = SimTime::from_secs(1);
            q.push(t1, 1);
            q.push(t1, 2);
            q.push(SimTime::from_secs(2), 3);
            let mut buf = Vec::with_capacity(8);
            assert_eq!(q.pop_batch_into(&mut buf), Some(t1));
            assert_eq!(buf, vec![1, 2]);
            assert_eq!(q.pop_batch_into(&mut buf), Some(SimTime::from_secs(2)));
            assert_eq!(buf, vec![3]);
            assert_eq!(q.pop_batch_into(&mut buf), None);
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn clear_empties() {
        for mut q in both_backends() {
            q.push(SimTime::ZERO, 0);
            q.clear();
            assert!(q.is_empty());
        }
    }

    #[test]
    fn backend_selection_round_trips() {
        assert_eq!("heap".parse::<QueueBackend>(), Ok(QueueBackend::Heap));
        assert_eq!("wheel".parse::<QueueBackend>(), Ok(QueueBackend::Wheel));
        assert!("pigeonhole".parse::<QueueBackend>().is_err());
        assert_eq!(QueueBackend::Heap.label(), "heap");
        assert_eq!(QueueBackend::Wheel.label(), "wheel");
        let q = EventQueue::<u8>::with_backend(QueueBackend::Heap);
        assert_eq!(q.backend(), QueueBackend::Heap);
        let w = EventQueue::<u8>::with_backend(QueueBackend::Wheel);
        assert_eq!(w.backend(), QueueBackend::Wheel);
    }
}
