//! Deterministic event queue.
//!
//! A priority queue of timestamped events. Events scheduled for the same
//! instant pop in insertion order (FIFO), which makes simulations
//! deterministic regardless of how the underlying heap happens to order
//! equal keys.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A timestamped entry in the queue.
///
/// Ordered so that the *earliest* time is the *greatest* entry (so it sits at
/// the top of the max-heap), with the insertion sequence number breaking
/// ties in FIFO order.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller (time, seq) compares greater, so it pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// # Examples
///
/// ```
/// use spotcheck_simcore::queue::EventQueue;
/// use spotcheck_simcore::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            crate::metrics::add(1);
            (e.time, e.event)
        })
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Drains and returns all events at the earliest pending instant,
    /// in FIFO order, along with that instant.
    ///
    /// Returns `None` if the queue is empty.
    pub fn pop_batch(&mut self) -> Option<(SimTime, Vec<E>)> {
        let t = self.peek_time()?;
        let mut batch = Vec::new();
        while self.peek_time() == Some(t) {
            batch.push(self.heap.pop().expect("peeked entry must exist").event);
        }
        crate::metrics::add(batch.len() as u64);
        Some((t, batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ties_stay_fifo() {
        let mut q = EventQueue::new();
        let t1 = SimTime::from_secs(1);
        let t2 = SimTime::from_secs(2);
        q.push(t2, "b1");
        q.push(t1, "a1");
        q.push(t2, "b2");
        q.push(t1, "a2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a1", "a2", "b1", "b2"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_groups_same_instant() {
        let mut q = EventQueue::new();
        let t1 = SimTime::from_secs(1);
        q.push(t1, 1);
        q.push(t1, 2);
        q.push(SimTime::from_secs(2), 3);
        assert_eq!(q.pop_batch(), Some((t1, vec![1, 2])));
        assert_eq!(q.pop_batch(), Some((SimTime::from_secs(2), vec![3])));
        assert_eq!(q.pop_batch(), None);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
    }
}
