//! Deterministic sharded simulation: per-shard event loops with
//! Lamport-ordered cross-shard message passing at epoch boundaries.
//!
//! A [`ShardedSim`] partitions a model into logical shards (e.g. one per
//! availability-zone group), each owning its own state, event queue, and
//! clock. Shards run **barrier-free** between epoch boundaries: within an
//! epoch window no shard can observe another, so windows execute on worker
//! threads with no locks and no communication. Cross-shard messages are
//! buffered in per-shard outboxes and exchanged only at the barrier.
//!
//! # The conservative-lookahead contract
//!
//! Every cross-shard message must fire at least one **lookahead** after it
//! is sent — the minimum cross-shard latency of the model (network
//! propagation, gossip cadence, ...). Epoch windows are at most one
//! lookahead long, so a message sent anywhere inside a window provably
//! fires at or after the window's end and can be exchanged at the barrier
//! without ever arriving in a shard's past. [`ShardCtx::send`] enforces
//! this with a panic, making a model that understates its own latency loud
//! rather than silently nondeterministic.
//!
//! # Determinism
//!
//! Messages carry Lamport-ordered keys `(fire_at, src_shard, seq)` where
//! `seq` is a per-source monotonic counter — globally unique, totally
//! ordered, and independent of which worker thread ran which shard or
//! where the barriers happened to fall. Delivery obeys one canonical rule,
//! the same one a single merged engine would apply:
//!
//! > At any instant, a shard delivers pending inbound messages in key
//! > order **before** processing local events at that instant (local
//! > events keep their FIFO order).
//!
//! Because inbound messages are held in a key-sorted staging buffer rather
//! than pushed into the local FIFO queue, the delivery order is a pure
//! function of the keys: byte-identical output at any worker count
//! ([`set_shard_workers`]) *and* at any epoch subdivision (pinned by the
//! seeded property tests in `tests/shard_props.rs`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::engine::Scheduler;
use crate::metrics;
use crate::parallel;
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Identifies one logical shard of a [`ShardedSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u16);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Lamport-ordered key of a cross-shard message: `(fire_at, src, seq)`.
///
/// `seq` increments per source shard and never resets, so keys are
/// globally unique and the derived `Ord` is a total order — the delivery
/// order is exactly the sort order of these keys, whatever the worker
/// count or barrier placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MsgKey {
    /// Simulated instant the message is delivered at.
    pub fire_at: SimTime,
    /// The sending shard.
    pub src: ShardId,
    /// Per-source monotonic sequence number (never reset).
    pub seq: u64,
}

/// A routed cross-shard message.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Lamport delivery key.
    pub key: MsgKey,
    /// The destination shard.
    pub dst: ShardId,
    /// The payload.
    pub msg: M,
}

/// A sharded simulation model: per-shard state plus handlers for local
/// events and inbound cross-shard messages.
///
/// One value of the implementing type exists per shard; handlers receive a
/// [`ShardCtx`] to schedule local follow-ups and send cross-shard
/// messages.
pub trait ShardWorld {
    /// Shard-local event alphabet.
    type Event;
    /// Cross-shard message alphabet.
    type Msg;

    /// Handles one local event at its firing time.
    fn handle(&mut self, event: Self::Event, ctx: &mut ShardCtx<'_, '_, Self::Event, Self::Msg>);

    /// Delivers one inbound cross-shard message at its firing time.
    fn on_message(
        &mut self,
        src: ShardId,
        msg: Self::Msg,
        ctx: &mut ShardCtx<'_, '_, Self::Event, Self::Msg>,
    );
}

/// Scheduling + messaging context handed to [`ShardWorld`] handlers.
pub struct ShardCtx<'a, 'b, E, M> {
    sched: Scheduler<'b, E>,
    net: &'a mut Outbox<M>,
    shard: ShardId,
}

impl<E, M> ShardCtx<'_, '_, E, M> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// This shard's id.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Schedules a local event at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn at(&mut self, at: SimTime, event: E) {
        self.sched.at(at, event);
    }

    /// Schedules a local event `delay` after the current instant.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.sched.after(delay, event);
    }

    /// Sends a cross-shard message to `dst`, delivered at `fire_at`.
    ///
    /// Sending to the own shard is allowed (the message takes the same
    /// Lamport-ordered path as any other).
    ///
    /// # Panics
    ///
    /// Panics if `fire_at` lands before the current epoch window's end —
    /// that would violate the conservative-lookahead contract the barrier
    /// exchange depends on. Keep every cross-shard latency at or above the
    /// lookahead the [`ShardedSim`] was built with.
    pub fn send(&mut self, dst: ShardId, fire_at: SimTime, msg: M) {
        assert!(
            fire_at >= self.net.guard,
            "cross-shard message from {} fires at {fire_at}, inside the current \
             epoch window (end {}): latency is below the configured lookahead",
            self.shard,
            self.net.guard,
        );
        let key = MsgKey {
            fire_at,
            src: self.shard,
            seq: self.net.next_seq,
        };
        self.net.next_seq += 1;
        self.net.out.push(Envelope { key, dst, msg });
    }
}

/// Per-shard outbox of cross-shard messages buffered until the barrier.
struct Outbox<M> {
    /// End of the current epoch window (the send-time lower bound).
    guard: SimTime,
    /// Per-source monotonic sequence counter (never reset).
    next_seq: u64,
    out: Vec<Envelope<M>>,
}

/// One logical shard: world, local queue, key-sorted inbound staging,
/// outbox, and clock.
struct ShardCell<W: ShardWorld> {
    world: W,
    id: ShardId,
    queue: EventQueue<W::Event>,
    /// Pending inbound messages, ascending by key.
    inbound: VecDeque<Envelope<W::Msg>>,
    net: Outbox<W::Msg>,
    now: SimTime,
    steps: u64,
}

impl<W: ShardWorld> ShardCell<W> {
    /// Processes everything strictly before `end` (and, when `inclusive`,
    /// at `end`): inbound messages and local events interleaved in
    /// canonical order — at equal instants, messages in key order first,
    /// then local FIFO.
    fn run_window(&mut self, end: SimTime, inclusive: bool) {
        self.net.guard = end;
        loop {
            let next_msg = self.inbound.front().map(|e| e.key.fire_at);
            let next_evt = self.queue.peek_time();
            let (t, is_msg) = match (next_msg, next_evt) {
                (None, None) => break,
                (Some(m), None) => (m, true),
                (None, Some(e)) => (e, false),
                // Messages win ties: the canonical delivery rule.
                (Some(m), Some(e)) => {
                    if m <= e {
                        (m, true)
                    } else {
                        (e, false)
                    }
                }
            };
            if t > end || (!inclusive && t == end) {
                break;
            }
            self.now = t;
            self.steps += 1;
            if is_msg {
                let env = self.inbound.pop_front().expect("peeked message exists");
                metrics::add(1);
                let mut ctx = ShardCtx {
                    sched: Scheduler::over(t, &mut self.queue),
                    net: &mut self.net,
                    shard: self.id,
                };
                self.world.on_message(env.key.src, env.msg, &mut ctx);
            } else {
                let (_, event) = self.queue.pop().expect("peeked event exists");
                let mut ctx = ShardCtx {
                    sched: Scheduler::over(t, &mut self.queue),
                    net: &mut self.net,
                    shard: self.id,
                };
                self.world.handle(event, &mut ctx);
            }
            metrics::note_queue_depth((self.queue.len() + self.inbound.len()) as u64);
        }
    }

    /// Merges a key-ascending batch of inbound messages into the staging
    /// buffer (which is itself key-ascending), preserving the total order.
    fn accept(&mut self, batch: Vec<Envelope<W::Msg>>) {
        if batch.is_empty() {
            return;
        }
        let batch_after_pending = match self.inbound.back() {
            Some(last) => last.key < batch[0].key,
            None => true,
        };
        if batch_after_pending {
            // Common case: everything pending fires before the new batch.
            self.inbound.extend(batch);
            return;
        }
        let mut merged: VecDeque<Envelope<W::Msg>> =
            VecDeque::with_capacity(self.inbound.len() + batch.len());
        let mut new = batch.into_iter().peekable();
        for old in self.inbound.drain(..) {
            while new.peek().is_some_and(|n| n.key < old.key) {
                merged.push_back(new.next().expect("peeked message exists"));
            }
            merged.push_back(old);
        }
        merged.extend(new);
        self.inbound = merged;
    }
}

/// Process-wide worker cap for epoch windows; 0 means "follow
/// [`parallel::configured_threads`]".
static SHARD_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker-thread count sharded simulations use for epoch windows
/// (the experiments CLI's `--shards N`; `0` follows `--threads`).
///
/// Purely a performance knob: shard output is byte-identical at every
/// setting.
pub fn set_shard_workers(n: usize) {
    SHARD_WORKERS.store(n, Ordering::SeqCst);
}

/// The configured shard worker count ([`set_shard_workers`], falling back
/// to [`parallel::configured_threads`]).
pub fn shard_workers() -> usize {
    match SHARD_WORKERS.load(Ordering::SeqCst) {
        0 => parallel::configured_threads(),
        n => n,
    }
}

/// A sharded discrete-event simulation over a set of [`ShardWorld`]s.
///
/// # Examples
///
/// ```
/// use spotcheck_simcore::shard::{ShardCtx, ShardId, ShardWorld, ShardedSim};
/// use spotcheck_simcore::time::{SimDuration, SimTime};
///
/// /// Each shard forwards a counter to the next shard once per tick.
/// struct Ring {
///     received: Vec<u64>,
/// }
///
/// impl ShardWorld for Ring {
///     type Event = ();
///     type Msg = u64;
///     fn handle(&mut self, _e: (), ctx: &mut ShardCtx<'_, '_, (), u64>) {
///         let next = ShardId((ctx.shard().0 + 1) % 3);
///         ctx.send(next, ctx.now() + SimDuration::from_secs(60), ctx.shard().0 as u64);
///     }
///     fn on_message(&mut self, _src: ShardId, msg: u64, _ctx: &mut ShardCtx<'_, '_, (), u64>) {
///         self.received.push(msg);
///     }
/// }
///
/// let worlds = (0..3).map(|_| Ring { received: Vec::new() }).collect();
/// let mut sim = ShardedSim::new(worlds, SimDuration::from_secs(60));
/// for s in 0..3 {
///     sim.schedule_at(s, SimTime::ZERO, ());
/// }
/// sim.run_until(SimTime::from_secs(120));
/// assert_eq!(sim.world(1).received, vec![0]);
/// ```
pub struct ShardedSim<W: ShardWorld> {
    cells: Vec<ShardCell<W>>,
    lookahead: SimDuration,
    epoch: SimDuration,
    now: SimTime,
    epochs: u64,
    delivered: u64,
}

impl<W: ShardWorld> ShardedSim<W> {
    /// Builds a sharded simulation at time zero, one shard per world, with
    /// epoch windows equal to `lookahead` (the minimum cross-shard
    /// latency).
    ///
    /// # Panics
    ///
    /// Panics if `worlds` is empty, exceeds `u16::MAX` shards, or
    /// `lookahead` is zero.
    pub fn new(worlds: Vec<W>, lookahead: SimDuration) -> Self {
        Self::with_epoch(worlds, lookahead, lookahead)
    }

    /// Like [`ShardedSim::new`] with explicit barrier spacing `epoch`
    /// (clamped contract: `0 < epoch <= lookahead`). Shorter epochs place
    /// more barriers without changing any output — the property tests use
    /// this to pin barrier-placement invariance.
    ///
    /// # Panics
    ///
    /// Panics if `worlds` is empty or the epoch/lookahead contract is
    /// violated.
    pub fn with_epoch(worlds: Vec<W>, lookahead: SimDuration, epoch: SimDuration) -> Self {
        assert!(!worlds.is_empty(), "a sharded simulation needs >= 1 shard");
        assert!(
            worlds.len() <= u16::MAX as usize,
            "shard ids are u16: at most {} shards",
            u16::MAX
        );
        assert!(
            epoch > SimDuration::ZERO && epoch <= lookahead,
            "epoch must satisfy 0 < epoch ({epoch}) <= lookahead ({lookahead})"
        );
        let cells = worlds
            .into_iter()
            .enumerate()
            .map(|(i, world)| ShardCell {
                world,
                id: ShardId(i as u16),
                queue: EventQueue::new(),
                inbound: VecDeque::new(),
                net: Outbox {
                    guard: SimTime::ZERO,
                    next_seq: 0,
                    out: Vec::new(),
                },
                now: SimTime::ZERO,
                steps: 0,
            })
            .collect();
        ShardedSim {
            cells,
            lookahead,
            epoch,
            now: SimTime::ZERO,
            epochs: 0,
            delivered: 0,
        }
    }

    /// Number of logical shards.
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// The last completed epoch boundary.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configured lookahead (minimum cross-shard latency).
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Epoch windows completed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Cross-shard messages delivered so far.
    pub fn messages_delivered(&self) -> u64 {
        self.delivered
    }

    /// Cross-shard messages sent but not yet delivered (buffered in
    /// outboxes or staged beyond the simulated horizon).
    pub fn messages_pending(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| (c.net.out.len() + c.inbound.len()) as u64)
            .sum()
    }

    /// Total events + messages processed across every shard.
    pub fn total_steps(&self) -> u64 {
        self.cells.iter().map(|c| c.steps).sum()
    }

    /// Shared access to shard `i`'s world.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn world(&self, i: usize) -> &W {
        &self.cells[i].world
    }

    /// Exclusive access to shard `i`'s world.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn world_mut(&mut self, i: usize) -> &mut W {
        &mut self.cells[i].world
    }

    /// Iterates every shard's world in shard-id order.
    pub fn worlds(&self) -> impl Iterator<Item = &W> {
        self.cells.iter().map(|c| &c.world)
    }

    /// Schedules an initial local event on shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or `at` is before the last
    /// completed epoch boundary.
    pub fn schedule_at(&mut self, shard: usize, at: SimTime, event: W::Event) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at}, boundary={}",
            self.now
        );
        self.cells[shard].queue.push(at, event);
    }

    /// Collects every outbox, sorts by Lamport key, and stages messages
    /// into their destination shards' inbound buffers.
    fn exchange(&mut self) {
        let mut all: Vec<Envelope<W::Msg>> = Vec::new();
        for cell in &mut self.cells {
            all.append(&mut cell.net.out);
        }
        if all.is_empty() {
            return;
        }
        // Keys are globally unique, so unstable sort is deterministic.
        all.sort_unstable_by_key(|e| e.key);
        self.delivered += all.len() as u64;
        let mut per_dst: Vec<Vec<Envelope<W::Msg>>> = Vec::new();
        per_dst.resize_with(self.cells.len(), Vec::new);
        for env in all {
            let dst = env.dst.0 as usize;
            assert!(
                dst < self.cells.len(),
                "cross-shard message addressed to unknown {}",
                env.dst
            );
            per_dst[dst].push(env);
        }
        for (cell, batch) in self.cells.iter_mut().zip(per_dst) {
            cell.accept(batch);
        }
    }

    /// Runs the current window on every shard, on up to [`shard_workers`]
    /// worker threads (inline when effectively serial).
    fn run_windows(&mut self, end: SimTime, inclusive: bool)
    where
        W: Send,
        W::Event: Send,
        W::Msg: Send,
    {
        let workers = shard_workers().clamp(1, self.cells.len());
        if workers <= 1 {
            for cell in &mut self.cells {
                cell.run_window(end, inclusive);
            }
        } else {
            let cells = std::mem::take(&mut self.cells);
            self.cells = parallel::parallel_map_indexed(workers, cells, |_, mut cell| {
                cell.run_window(end, inclusive);
                cell
            });
        }
    }

    /// Runs every shard up to (and including) `horizon`.
    ///
    /// Epoch loop: exchange pending messages, run each shard's
    /// end-exclusive window barrier-free, repeat. Windows exclude their
    /// end so a message firing exactly at a boundary is always delivered
    /// at the *start* of the next window — before local events at that
    /// instant — keeping delivery order independent of where the barriers
    /// fall. The instant `horizon` itself is resolved in a final pass
    /// (exchange, then one inclusive zero-length window) so events and
    /// messages firing exactly at `horizon` are processed; messages sent
    /// at the horizon necessarily fire after it (conservative lookahead)
    /// and stay buffered for a later `run_until` call.
    pub fn run_until(&mut self, horizon: SimTime)
    where
        W: Send,
        W::Event: Send,
        W::Msg: Send,
    {
        while self.now < horizon {
            self.exchange();
            let end = (self.now + self.epoch).min(horizon);
            self.run_windows(end, false);
            self.now = end;
            self.epochs += 1;
        }
        // Resolve the horizon instant: messages staged for exactly
        // `horizon` deliver before local events at `horizon`. Handlers at
        // the horizon may schedule same-instant local follow-ups, and a
        // lookahead-violating model could even send a same-instant
        // message, so loop until the instant is quiescent — exactly what a
        // flat single-queue engine would do.
        loop {
            self.exchange();
            let due = self.cells.iter().any(|c| {
                c.inbound
                    .front()
                    .is_some_and(|e| e.key.fire_at <= horizon)
                    || c.queue.peek_time().is_some_and(|t| t <= horizon)
            });
            if !due {
                break;
            }
            self.run_windows(horizon, true);
        }
        debug_assert!(
            self.cells
                .iter()
                .all(|c| c.inbound.front().map_or(true, |e| e.key.fire_at > self.now)),
            "a cross-shard message was staged into the past"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test world: logs every delivery, periodically pings a partner.
    struct Pinger {
        partner: ShardId,
        period: SimDuration,
        latency: SimDuration,
        log: Vec<(SimTime, ShardId, u64)>,
        sent: u64,
    }

    impl ShardWorld for Pinger {
        type Event = ();
        type Msg = u64;

        fn handle(&mut self, _e: (), ctx: &mut ShardCtx<'_, '_, (), u64>) {
            ctx.send(self.partner, ctx.now() + self.latency, self.sent);
            self.sent += 1;
            ctx.after(self.period, ());
        }

        fn on_message(&mut self, src: ShardId, msg: u64, ctx: &mut ShardCtx<'_, '_, (), u64>) {
            self.log.push((ctx.now(), src, msg));
        }
    }

    fn ping_ring(n: u16, latency: SimDuration) -> Vec<Pinger> {
        (0..n)
            .map(|i| Pinger {
                partner: ShardId((i + 1) % n),
                period: SimDuration::from_secs(30),
                latency,
                log: Vec::new(),
                sent: 0,
            })
            .collect()
    }

    #[test]
    fn messages_cross_shards_and_arrive_on_time() {
        let lookahead = SimDuration::from_secs(60);
        let mut sim = ShardedSim::new(ping_ring(3, lookahead), lookahead);
        for s in 0..3 {
            sim.schedule_at(s, SimTime::ZERO, ());
        }
        sim.run_until(SimTime::from_secs(300));
        // Shard 1 hears shard 0's ping from t=0 at t=60, t=30 at 90, ...
        let log = &sim.world(1).log;
        assert!(!log.is_empty());
        assert_eq!(log[0], (SimTime::from_secs(60), ShardId(0), 0));
        assert_eq!(log[1], (SimTime::from_secs(90), ShardId(0), 1));
        assert!(sim.messages_delivered() > 0);
    }

    #[test]
    fn identical_logs_at_any_worker_count_and_epoch_split() {
        let lookahead = SimDuration::from_secs(60);
        let run = |workers: usize, epoch: SimDuration| {
            set_shard_workers(workers);
            let mut sim = ShardedSim::with_epoch(ping_ring(4, lookahead), lookahead, epoch);
            for s in 0..4 {
                sim.schedule_at(s, SimTime::ZERO, ());
            }
            sim.run_until(SimTime::from_secs(600));
            set_shard_workers(0);
            let logs: Vec<_> = sim.worlds().map(|w| w.log.clone()).collect();
            logs
        };
        let baseline = run(1, lookahead);
        for workers in [2, 4, 8] {
            assert_eq!(run(workers, lookahead), baseline, "diverged at {workers} workers");
        }
        for epoch in [SimDuration::from_secs(30), SimDuration::from_secs(20)] {
            assert_eq!(run(4, epoch), baseline, "diverged at epoch {epoch}");
        }
    }

    #[test]
    fn messages_deliver_before_local_events_at_the_same_instant() {
        /// Shard 1 schedules a local marker at t=60; shard 0 sends a
        /// message that also fires at t=60. The message must win the tie.
        struct TieWorld {
            order: Vec<&'static str>,
        }
        impl ShardWorld for TieWorld {
            type Event = &'static str;
            type Msg = ();
            fn handle(&mut self, e: &'static str, ctx: &mut ShardCtx<'_, '_, &'static str, ()>) {
                if e == "send" {
                    ctx.send(ShardId(1), SimTime::from_secs(60), ());
                } else {
                    self.order.push(e);
                }
            }
            fn on_message(&mut self, _s: ShardId, _m: (), _c: &mut ShardCtx<'_, '_, &'static str, ()>) {
                self.order.push("msg");
            }
        }
        let worlds = vec![TieWorld { order: vec![] }, TieWorld { order: vec![] }];
        let mut sim = ShardedSim::new(worlds, SimDuration::from_secs(60));
        sim.schedule_at(0, SimTime::ZERO, "send");
        sim.schedule_at(1, SimTime::from_secs(60), "local");
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(sim.world(1).order, vec!["msg", "local"]);
    }

    #[test]
    #[should_panic(expected = "below the configured lookahead")]
    fn undershooting_the_lookahead_panics() {
        let lookahead = SimDuration::from_secs(60);
        let mut worlds = ping_ring(2, SimDuration::from_secs(10));
        worlds[0].latency = SimDuration::from_secs(10); // below lookahead
        let mut sim = ShardedSim::new(worlds, lookahead);
        sim.schedule_at(0, SimTime::ZERO, ());
        sim.run_until(SimTime::from_secs(120));
    }

    #[test]
    fn final_window_is_inclusive_and_leftovers_stay_pending() {
        let lookahead = SimDuration::from_secs(60);
        let mut sim = ShardedSim::new(ping_ring(2, lookahead), lookahead);
        sim.schedule_at(0, SimTime::ZERO, ());
        // Horizon exactly on a tick: the t=120 local tick must run.
        sim.run_until(SimTime::from_secs(120));
        assert_eq!(sim.world(0).sent, 5); // ticks at 0,30,60,90,120
        // The last sends fire past the horizon: pending, not lost.
        assert!(sim.messages_pending() > 0);
        let before = sim.world(1).log.len();
        sim.run_until(SimTime::from_secs(200));
        assert!(sim.world(1).log.len() > before);
    }

    #[test]
    fn steps_count_events_and_messages() {
        let lookahead = SimDuration::from_secs(60);
        let mut sim = ShardedSim::new(ping_ring(2, lookahead), lookahead);
        sim.schedule_at(0, SimTime::ZERO, ());
        sim.run_until(SimTime::from_secs(60));
        // Shard 0 ticked at 0,30,60; shard 1 heard the t=0 ping at 60.
        assert_eq!(sim.total_steps(), 4);
        assert_eq!(sim.epochs(), 1);
    }

    #[test]
    #[should_panic(expected = "needs >= 1 shard")]
    fn empty_shard_set_panics() {
        let _ = ShardedSim::<Pinger>::new(Vec::new(), SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "epoch must satisfy")]
    fn oversized_epoch_panics() {
        let _ = ShardedSim::with_epoch(
            ping_ring(2, SimDuration::from_secs(60)),
            SimDuration::from_secs(60),
            SimDuration::from_secs(120),
        );
    }
}
