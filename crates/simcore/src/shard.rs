//! Deterministic sharded simulation: per-shard event loops with
//! Lamport-ordered cross-shard message passing at epoch boundaries.
//!
//! A [`ShardedSim`] partitions a model into logical shards (e.g. one per
//! availability-zone group), each owning its own state, event queue, and
//! clock. Shards run **barrier-free** between epoch boundaries: within an
//! epoch window no shard can observe another, so windows execute on worker
//! threads with no locks and no communication. Cross-shard messages are
//! buffered in per-shard outboxes and exchanged only at the barrier.
//!
//! # The conservative-lookahead contract
//!
//! Every cross-shard message must fire at least one **lookahead** after it
//! is sent — the minimum cross-shard latency of the model (network
//! propagation, gossip cadence, ...). Epoch windows are at most one
//! lookahead long, so a message sent anywhere inside a window provably
//! fires at or after the window's end and can be exchanged at the barrier
//! without ever arriving in a shard's past. [`ShardCtx::send`] enforces
//! this with a panic, making a model that understates its own latency loud
//! rather than silently nondeterministic.
//!
//! # Determinism
//!
//! Messages carry Lamport-ordered keys `(fire_at, src_shard, seq)` where
//! `seq` is a per-source monotonic counter — globally unique, totally
//! ordered, and independent of which worker thread ran which shard or
//! where the barriers happened to fall. Delivery obeys one canonical rule,
//! the same one a single merged engine would apply:
//!
//! > At any instant, a shard delivers pending inbound messages in key
//! > order **before** processing local events at that instant (local
//! > events keep their FIFO order).
//!
//! Because inbound messages are held in a key-sorted staging buffer rather
//! than pushed into the local FIFO queue, the delivery order is a pure
//! function of the keys: byte-identical output at any worker count
//! ([`set_shard_workers`]) *and* at any epoch subdivision (pinned by the
//! seeded property tests in `tests/shard_props.rs`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::engine::Scheduler;
use crate::metrics;
use crate::parallel;
use crate::pool;
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Identifies one logical shard of a [`ShardedSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u16);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Lamport-ordered key of a cross-shard message: `(fire_at, src, seq)`.
///
/// `seq` increments per source shard and never resets, so keys are
/// globally unique and the derived `Ord` is a total order — the delivery
/// order is exactly the sort order of these keys, whatever the worker
/// count or barrier placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MsgKey {
    /// Simulated instant the message is delivered at.
    pub fire_at: SimTime,
    /// The sending shard.
    pub src: ShardId,
    /// Per-source monotonic sequence number (never reset).
    pub seq: u64,
}

/// A routed cross-shard message.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Lamport delivery key.
    pub key: MsgKey,
    /// The destination shard.
    pub dst: ShardId,
    /// The payload.
    pub msg: M,
}

/// A sharded simulation model: per-shard state plus handlers for local
/// events and inbound cross-shard messages.
///
/// One value of the implementing type exists per shard; handlers receive a
/// [`ShardCtx`] to schedule local follow-ups and send cross-shard
/// messages.
pub trait ShardWorld {
    /// Shard-local event alphabet.
    type Event;
    /// Cross-shard message alphabet.
    type Msg;

    /// Handles one local event at its firing time.
    fn handle(&mut self, event: Self::Event, ctx: &mut ShardCtx<'_, '_, Self::Event, Self::Msg>);

    /// Delivers one inbound cross-shard message at its firing time.
    fn on_message(
        &mut self,
        src: ShardId,
        msg: Self::Msg,
        ctx: &mut ShardCtx<'_, '_, Self::Event, Self::Msg>,
    );
}

/// Scheduling + messaging context handed to [`ShardWorld`] handlers.
pub struct ShardCtx<'a, 'b, E, M> {
    sched: Scheduler<'b, E>,
    net: &'a mut Outbox<M>,
    shard: ShardId,
}

impl<E, M> ShardCtx<'_, '_, E, M> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// This shard's id.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Schedules a local event at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn at(&mut self, at: SimTime, event: E) {
        self.sched.at(at, event);
    }

    /// Schedules a local event `delay` after the current instant.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.sched.after(delay, event);
    }

    /// Sends a cross-shard message to `dst`, delivered at `fire_at`.
    ///
    /// Sending to the own shard is allowed (the message takes the same
    /// Lamport-ordered path as any other).
    ///
    /// # Panics
    ///
    /// Panics if `fire_at` lands before the current epoch window's end —
    /// that would violate the conservative-lookahead contract the barrier
    /// exchange depends on. Keep every cross-shard latency at or above the
    /// lookahead the [`ShardedSim`] was built with.
    pub fn send(&mut self, dst: ShardId, fire_at: SimTime, msg: M) {
        assert!(
            fire_at >= self.net.guard,
            "cross-shard message from {} fires at {fire_at}, inside the current \
             epoch window (end {}): latency is below the configured lookahead",
            self.shard,
            self.net.guard,
        );
        let key = MsgKey {
            fire_at,
            src: self.shard,
            seq: self.net.next_seq,
        };
        self.net.next_seq += 1;
        self.net.out.push(Envelope { key, dst, msg });
    }
}

/// Per-shard outbox of cross-shard messages buffered until the barrier.
struct Outbox<M> {
    /// End of the current epoch window (the send-time lower bound).
    guard: SimTime,
    /// Per-source monotonic sequence counter (never reset).
    next_seq: u64,
    out: Vec<Envelope<M>>,
}

/// One logical shard: world, local queue, key-sorted inbound staging,
/// outbox, and clock.
struct ShardCell<W: ShardWorld> {
    world: W,
    id: ShardId,
    queue: EventQueue<W::Event>,
    /// Pending inbound messages, ascending by key.
    inbound: VecDeque<Envelope<W::Msg>>,
    net: Outbox<W::Msg>,
    now: SimTime,
    steps: u64,
}

impl<W: ShardWorld> ShardCell<W> {
    /// Processes everything strictly before `end` (and, when `inclusive`,
    /// at `end`): inbound messages and local events interleaved in
    /// canonical order — at equal instants, messages in key order first,
    /// then local FIFO.
    fn run_window(&mut self, end: SimTime, inclusive: bool) {
        self.net.guard = end;
        loop {
            let next_msg = self.inbound.front().map(|e| e.key.fire_at);
            let next_evt = self.queue.peek_time();
            let (t, is_msg) = match (next_msg, next_evt) {
                (None, None) => break,
                (Some(m), None) => (m, true),
                (None, Some(e)) => (e, false),
                // Messages win ties: the canonical delivery rule.
                (Some(m), Some(e)) => {
                    if m <= e {
                        (m, true)
                    } else {
                        (e, false)
                    }
                }
            };
            if t > end || (!inclusive && t == end) {
                break;
            }
            self.now = t;
            self.steps += 1;
            if is_msg {
                let env = self.inbound.pop_front().expect("peeked message exists");
                metrics::add(1);
                let mut ctx = ShardCtx {
                    sched: Scheduler::over(t, &mut self.queue),
                    net: &mut self.net,
                    shard: self.id,
                };
                self.world.on_message(env.key.src, env.msg, &mut ctx);
            } else {
                let (_, event) = self.queue.pop().expect("peeked event exists");
                let mut ctx = ShardCtx {
                    sched: Scheduler::over(t, &mut self.queue),
                    net: &mut self.net,
                    shard: self.id,
                };
                self.world.handle(event, &mut ctx);
            }
            metrics::note_queue_depth((self.queue.len() + self.inbound.len()) as u64);
        }
    }

    /// Merges a key-ascending batch of inbound messages into the staging
    /// buffer (which is itself key-ascending), preserving the total order.
    ///
    /// Drains `batch` in place so the caller's buffer (the exchange
    /// scratch) keeps its capacity across barriers.
    fn accept(&mut self, batch: &mut Vec<Envelope<W::Msg>>) {
        if batch.is_empty() {
            return;
        }
        let batch_after_pending = match self.inbound.back() {
            Some(last) => last.key < batch[0].key,
            None => true,
        };
        if batch_after_pending {
            // Common case: everything pending fires before the new batch.
            self.inbound.extend(batch.drain(..));
            return;
        }
        let mut merged: VecDeque<Envelope<W::Msg>> =
            VecDeque::with_capacity(self.inbound.len() + batch.len());
        let mut new = batch.drain(..).peekable();
        for old in self.inbound.drain(..) {
            while new.peek().is_some_and(|n| n.key < old.key) {
                merged.push_back(new.next().expect("peeked message exists"));
            }
            merged.push_back(old);
        }
        merged.extend(new);
        self.inbound = merged;
    }

    /// The earliest instant anything is due on this shard (staged inbound
    /// message or local event), if any.
    fn next_due(&self) -> Option<SimTime> {
        let msg = self.inbound.front().map(|e| e.key.fire_at);
        let evt = self.queue.peek_time();
        match (msg, evt) {
            (Some(m), Some(e)) => Some(m.min(e)),
            (m, e) => m.or(e),
        }
    }
}

/// Process-wide worker cap for epoch windows; 0 means "follow
/// [`parallel::configured_threads`]".
static SHARD_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker-thread count sharded simulations use for epoch windows
/// (the experiments CLI's `--shards N`; `0` follows `--threads`).
///
/// Purely a performance knob: shard output is byte-identical at every
/// setting.
pub fn set_shard_workers(n: usize) {
    SHARD_WORKERS.store(n, Ordering::SeqCst);
}

/// The configured shard worker count ([`set_shard_workers`], falling back
/// to [`parallel::configured_threads`]).
pub fn shard_workers() -> usize {
    match SHARD_WORKERS.load(Ordering::SeqCst) {
        0 => parallel::configured_threads(),
        n => n,
    }
}

/// The raw [`set_shard_workers`] value (0 = follow `--threads`), without
/// the fallback resolution [`shard_workers`] applies. Lets sweeps save and
/// restore the knob exactly.
pub fn configured_shard_workers() -> usize {
    SHARD_WORKERS.load(Ordering::SeqCst)
}

/// When set (the default is cleared), multi-worker window execution falls
/// back to per-window scoped spawns instead of the persistent pool.
static POOL_DISABLED: AtomicBool = AtomicBool::new(false);

/// When set (the default is cleared), empty epoch windows are executed
/// one by one instead of being fast-forwarded over.
static FAST_FORWARD_DISABLED: AtomicBool = AtomicBool::new(false);

/// Chooses the multi-worker execution path: the persistent [`crate::pool`]
/// (default, `true`) or per-window scoped spawns (`false`). Purely a
/// performance knob — output is byte-identical either way (the CLI's
/// `--no-pool`, pinned by the determinism suite).
pub fn set_pool_enabled(on: bool) {
    POOL_DISABLED.store(!on, Ordering::SeqCst);
}

/// Whether multi-worker windows use the persistent pool.
pub fn pool_enabled() -> bool {
    !POOL_DISABLED.load(Ordering::SeqCst)
}

/// Enables or disables idle-epoch fast-forward (default on). Fast-forward
/// jumps over epoch windows in which no shard has anything due, landing on
/// the epoch-grid point at or below the earliest due instant. It is pure
/// coarsening — the executed window sequence is the slow path's minus its
/// empty windows — so output is byte-identical either way (the CLI's
/// `--no-fast-forward`, pinned by the determinism suite).
pub fn set_fast_forward(on: bool) {
    FAST_FORWARD_DISABLED.store(!on, Ordering::SeqCst);
}

/// Whether idle-epoch fast-forward is enabled.
pub fn fast_forward_enabled() -> bool {
    !FAST_FORWARD_DISABLED.load(Ordering::SeqCst)
}

/// A sharded discrete-event simulation over a set of [`ShardWorld`]s.
///
/// # Examples
///
/// ```
/// use spotcheck_simcore::shard::{ShardCtx, ShardId, ShardWorld, ShardedSim};
/// use spotcheck_simcore::time::{SimDuration, SimTime};
///
/// /// Each shard forwards a counter to the next shard once per tick.
/// struct Ring {
///     received: Vec<u64>,
/// }
///
/// impl ShardWorld for Ring {
///     type Event = ();
///     type Msg = u64;
///     fn handle(&mut self, _e: (), ctx: &mut ShardCtx<'_, '_, (), u64>) {
///         let next = ShardId((ctx.shard().0 + 1) % 3);
///         ctx.send(next, ctx.now() + SimDuration::from_secs(60), ctx.shard().0 as u64);
///     }
///     fn on_message(&mut self, _src: ShardId, msg: u64, _ctx: &mut ShardCtx<'_, '_, (), u64>) {
///         self.received.push(msg);
///     }
/// }
///
/// let worlds = (0..3).map(|_| Ring { received: Vec::new() }).collect();
/// let mut sim = ShardedSim::new(worlds, SimDuration::from_secs(60));
/// for s in 0..3 {
///     sim.schedule_at(s, SimTime::ZERO, ());
/// }
/// sim.run_until(SimTime::from_secs(120));
/// assert_eq!(sim.world(1).received, vec![0]);
/// ```
pub struct ShardedSim<W: ShardWorld> {
    cells: Vec<ShardCell<W>>,
    state: LoopState<W::Msg>,
}

/// Everything the epoch loop needs besides the cells themselves. Split
/// out so the loop can run while the cells are owned by a worker pool:
/// the coordinator borrows `LoopState` mutably and reaches cells only
/// through the active [`WindowRunner`].
struct LoopState<M> {
    shards: usize,
    lookahead: SimDuration,
    epoch: SimDuration,
    now: SimTime,
    /// Epoch windows actually executed.
    epochs: u64,
    /// Empty epoch windows fast-forwarded over instead of executed.
    epochs_skipped: u64,
    delivered: u64,
    /// Snapshot of [`fast_forward_enabled`] taken at `run_until` entry.
    fast_forward: bool,
    scratch: ExchangeScratch<M>,
}

/// Persistent exchange buffers, reused across every barrier of the
/// simulation's lifetime (satisfying the no-per-barrier-allocation goal).
struct ExchangeScratch<M> {
    /// Gather/sort staging for all outboxes (drained every barrier).
    all: Vec<Envelope<M>>,
    /// Per-destination routing buffers (drained into cells every barrier).
    per_dst: Vec<Vec<Envelope<M>>>,
}

/// How the epoch loop reaches its shard cells: inline (serial), scoped
/// spawns per window (legacy path, kept selectable for benchmarking via
/// [`set_pool_enabled`]), or the persistent worker pool. The loop itself
/// is written once against this trait.
trait WindowRunner<W: ShardWorld> {
    /// Runs the window `[.., end)` (or `[.., end]` when `inclusive`) on
    /// every cell.
    fn run_windows(&mut self, end: SimTime, inclusive: bool);
    /// Visits every cell in shard-id order (coordinator-only phases:
    /// exchange, due-time scan).
    fn for_each_cell(&mut self, f: &mut dyn FnMut(&mut ShardCell<W>));
}

/// Serial execution on the coordinator thread.
struct InlineRunner<'a, W: ShardWorld> {
    cells: &'a mut Vec<ShardCell<W>>,
}

impl<W: ShardWorld> WindowRunner<W> for InlineRunner<'_, W> {
    fn run_windows(&mut self, end: SimTime, inclusive: bool) {
        for cell in self.cells.iter_mut() {
            cell.run_window(end, inclusive);
        }
    }

    fn for_each_cell(&mut self, f: &mut dyn FnMut(&mut ShardCell<W>)) {
        for cell in self.cells.iter_mut() {
            f(cell);
        }
    }
}

/// Legacy multi-worker path: fresh scoped spawns every window via
/// [`parallel::parallel_map_indexed`]. Retained so the pool's win stays
/// measurable (`--no-pool`, the `spawn_window_*` microbenches).
struct SpawnRunner<'a, W: ShardWorld> {
    cells: &'a mut Vec<ShardCell<W>>,
    workers: usize,
}

impl<W> WindowRunner<W> for SpawnRunner<'_, W>
where
    W: ShardWorld + Send,
    W::Event: Send,
    W::Msg: Send,
{
    fn run_windows(&mut self, end: SimTime, inclusive: bool) {
        let cells = std::mem::take(self.cells);
        *self.cells = parallel::parallel_map_indexed(self.workers, cells, |_, mut cell| {
            cell.run_window(end, inclusive);
            cell
        });
    }

    fn for_each_cell(&mut self, f: &mut dyn FnMut(&mut ShardCell<W>)) {
        for cell in self.cells.iter_mut() {
            f(cell);
        }
    }
}

/// Persistent-pool path: cells live in the pool's slots for the whole
/// `run_until`; windows are one barrier round each, coordinator phases
/// lock the (uncontended) slots in place.
struct PoolRunner<'a, 'p, W: ShardWorld> {
    pool: &'a mut pool::Pool<'p, ShardCell<W>, (SimTime, bool)>,
}

impl<W: ShardWorld> WindowRunner<W> for PoolRunner<'_, '_, W> {
    fn run_windows(&mut self, end: SimTime, inclusive: bool) {
        self.pool.run_epoch((end, inclusive));
    }

    fn for_each_cell(&mut self, f: &mut dyn FnMut(&mut ShardCell<W>)) {
        self.pool.for_each_slot(&mut |_, cell| f(cell));
    }
}

impl<M> LoopState<M> {
    /// Collects every outbox, sorts by Lamport key, and stages messages
    /// into their destination shards' inbound buffers. All staging goes
    /// through the persistent [`ExchangeScratch`]; steady state allocates
    /// nothing.
    fn exchange<W: ShardWorld<Msg = M>>(&mut self, runner: &mut dyn WindowRunner<W>) {
        let scratch = &mut self.scratch;
        runner.for_each_cell(&mut |cell| scratch.all.append(&mut cell.net.out));
        if scratch.all.is_empty() {
            return;
        }
        // Keys are globally unique, so unstable sort is deterministic.
        scratch.all.sort_unstable_by_key(|e| e.key);
        self.delivered += scratch.all.len() as u64;
        let shards = self.shards;
        for env in scratch.all.drain(..) {
            let dst = env.dst.0 as usize;
            assert!(
                dst < shards,
                "cross-shard message addressed to unknown {}",
                env.dst
            );
            scratch.per_dst[dst].push(env);
        }
        let mut i = 0;
        runner.for_each_cell(&mut |cell| {
            cell.accept(&mut scratch.per_dst[i]);
            i += 1;
        });
    }

    /// The earliest due instant across every shard (after an exchange, so
    /// outboxes are empty and staged inbound messages are visible).
    fn earliest_due<W: ShardWorld<Msg = M>>(
        &mut self,
        runner: &mut dyn WindowRunner<W>,
    ) -> Option<SimTime> {
        let mut due: Option<SimTime> = None;
        runner.for_each_cell(&mut |cell| {
            if let Some(t) = cell.next_due() {
                due = Some(due.map_or(t, |d| d.min(t)));
            }
        });
        due
    }

    /// The shared epoch loop: exchange, (maybe) fast-forward, run one
    /// window, repeat; then resolve the horizon instant to quiescence.
    /// Identical across all three [`WindowRunner`]s by construction.
    fn run_loop<W: ShardWorld<Msg = M>>(
        &mut self,
        runner: &mut dyn WindowRunner<W>,
        horizon: SimTime,
    ) {
        while self.now < horizon {
            self.exchange(runner);
            let mut end = (self.now + self.epoch).min(horizon);
            if self.fast_forward {
                match self.earliest_due(runner) {
                    // Window already non-empty: run it as usual.
                    Some(t) if t < end => {}
                    // Something is due before the horizon but past this
                    // window: jump to the epoch-grid point at or below it.
                    // The landing window provably contains `t`, so the
                    // executed sequence is the slow path's minus its empty
                    // windows (epoch-subdivision invariance gives
                    // byte-identity).
                    Some(t) if t < horizon => {
                        let k = (t - self.now).as_micros() / self.epoch.as_micros();
                        debug_assert!(k >= 1, "non-empty window misdetected as idle");
                        self.now += self.epoch * k;
                        self.epochs_skipped += k;
                        end = (self.now + self.epoch).min(horizon);
                    }
                    // Nothing due before the horizon: skip straight to it.
                    // The quiescence pass below handles the horizon
                    // instant itself (inclusive), exactly as the slow path
                    // would after grinding the remaining empty windows.
                    _ => {
                        let rem = (horizon - self.now).as_micros();
                        self.epochs_skipped += rem.div_ceil(self.epoch.as_micros());
                        self.now = horizon;
                        break;
                    }
                }
            }
            runner.run_windows(end, false);
            self.now = end;
            self.epochs += 1;
        }
        // Resolve the horizon instant: messages staged for exactly
        // `horizon` deliver before local events at `horizon`. Handlers at
        // the horizon may schedule same-instant local follow-ups, and a
        // lookahead-violating model could even send a same-instant
        // message, so loop until the instant is quiescent — exactly what a
        // flat single-queue engine would do.
        loop {
            self.exchange(runner);
            let due = self
                .earliest_due(runner)
                .is_some_and(|t| t <= horizon);
            if !due {
                break;
            }
            runner.run_windows(horizon, true);
        }
    }
}

impl<W: ShardWorld> ShardedSim<W> {
    /// Builds a sharded simulation at time zero, one shard per world, with
    /// epoch windows equal to `lookahead` (the minimum cross-shard
    /// latency).
    ///
    /// # Panics
    ///
    /// Panics if `worlds` is empty, exceeds `u16::MAX` shards, or
    /// `lookahead` is zero.
    pub fn new(worlds: Vec<W>, lookahead: SimDuration) -> Self {
        Self::with_epoch(worlds, lookahead, lookahead)
    }

    /// Like [`ShardedSim::new`] with explicit barrier spacing `epoch`
    /// (clamped contract: `0 < epoch <= lookahead`). Shorter epochs place
    /// more barriers without changing any output — the property tests use
    /// this to pin barrier-placement invariance.
    ///
    /// # Panics
    ///
    /// Panics if `worlds` is empty or the epoch/lookahead contract is
    /// violated.
    pub fn with_epoch(worlds: Vec<W>, lookahead: SimDuration, epoch: SimDuration) -> Self {
        assert!(!worlds.is_empty(), "a sharded simulation needs >= 1 shard");
        assert!(
            worlds.len() <= u16::MAX as usize,
            "shard ids are u16: at most {} shards",
            u16::MAX
        );
        assert!(
            epoch > SimDuration::ZERO && epoch <= lookahead,
            "epoch must satisfy 0 < epoch ({epoch}) <= lookahead ({lookahead})"
        );
        let cells: Vec<ShardCell<W>> = worlds
            .into_iter()
            .enumerate()
            .map(|(i, world)| ShardCell {
                world,
                id: ShardId(i as u16),
                queue: EventQueue::new(),
                inbound: VecDeque::new(),
                net: Outbox {
                    guard: SimTime::ZERO,
                    next_seq: 0,
                    out: Vec::new(),
                },
                now: SimTime::ZERO,
                steps: 0,
            })
            .collect();
        let shards = cells.len();
        let mut per_dst = Vec::new();
        per_dst.resize_with(shards, Vec::new);
        ShardedSim {
            cells,
            state: LoopState {
                shards,
                lookahead,
                epoch,
                now: SimTime::ZERO,
                epochs: 0,
                epochs_skipped: 0,
                delivered: 0,
                fast_forward: true,
                scratch: ExchangeScratch {
                    all: Vec::new(),
                    per_dst,
                },
            },
        }
    }

    /// Number of logical shards.
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// The last completed epoch boundary.
    pub fn now(&self) -> SimTime {
        self.state.now
    }

    /// The configured lookahead (minimum cross-shard latency).
    pub fn lookahead(&self) -> SimDuration {
        self.state.lookahead
    }

    /// Epoch windows actually executed so far.
    pub fn epochs(&self) -> u64 {
        self.state.epochs
    }

    /// Empty epoch windows fast-forwarded over (zero when fast-forward is
    /// disabled). [`Self::epochs`] plus this equals the grid total
    /// ([`Self::epoch_windows`]) regardless of the fast-forward setting.
    pub fn epochs_fast_forwarded(&self) -> u64 {
        self.state.epochs_skipped
    }

    /// Total epoch-grid windows covered so far (executed +
    /// fast-forwarded). Invariant across every execution-mode knob, so
    /// reports can print it without breaking byte-identity.
    pub fn epoch_windows(&self) -> u64 {
        self.state.epochs + self.state.epochs_skipped
    }

    /// Worker threads the next `run_until` will use for epoch windows
    /// (the configured [`shard_workers`] clamped to the shard count).
    pub fn window_workers(&self) -> usize {
        shard_workers().clamp(1, self.cells.len())
    }

    /// Cross-shard messages delivered so far.
    pub fn messages_delivered(&self) -> u64 {
        self.state.delivered
    }

    /// Cross-shard messages sent but not yet delivered (buffered in
    /// outboxes or staged beyond the simulated horizon).
    pub fn messages_pending(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| (c.net.out.len() + c.inbound.len()) as u64)
            .sum()
    }

    /// Total events + messages processed across every shard.
    pub fn total_steps(&self) -> u64 {
        self.cells.iter().map(|c| c.steps).sum()
    }

    /// Shared access to shard `i`'s world.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn world(&self, i: usize) -> &W {
        &self.cells[i].world
    }

    /// Exclusive access to shard `i`'s world.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn world_mut(&mut self, i: usize) -> &mut W {
        &mut self.cells[i].world
    }

    /// Iterates every shard's world in shard-id order.
    pub fn worlds(&self) -> impl Iterator<Item = &W> {
        self.cells.iter().map(|c| &c.world)
    }

    /// Schedules an initial local event on shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or `at` is before the last
    /// completed epoch boundary.
    pub fn schedule_at(&mut self, shard: usize, at: SimTime, event: W::Event) {
        assert!(
            at >= self.state.now,
            "cannot schedule event in the past: at={at}, boundary={}",
            self.state.now
        );
        self.cells[shard].queue.push(at, event);
    }

    /// Runs every shard up to (and including) `horizon`.
    ///
    /// Epoch loop: exchange pending messages, run each shard's
    /// end-exclusive window barrier-free, repeat. Windows exclude their
    /// end so a message firing exactly at a boundary is always delivered
    /// at the *start* of the next window — before local events at that
    /// instant — keeping delivery order independent of where the barriers
    /// fall. The instant `horizon` itself is resolved in a final pass
    /// (exchange, then one inclusive zero-length window) so events and
    /// messages firing exactly at `horizon` are processed; messages sent
    /// at the horizon necessarily fire after it (conservative lookahead)
    /// and stay buffered for a later `run_until` call.
    ///
    /// Execution mode is picked here per call: inline on the coordinator
    /// when effectively serial, otherwise the persistent worker pool
    /// ([`crate::pool`], the default) or legacy per-window scoped spawns
    /// ([`set_pool_enabled`]`(false)`). Empty windows are fast-forwarded
    /// over unless [`set_fast_forward`]`(false)`. All four combinations
    /// produce byte-identical output.
    pub fn run_until(&mut self, horizon: SimTime)
    where
        W: Send,
        W::Event: Send,
        W::Msg: Send,
    {
        self.state.fast_forward = fast_forward_enabled();
        let workers = shard_workers().clamp(1, self.cells.len());
        if workers <= 1 {
            self.state
                .run_loop(&mut InlineRunner { cells: &mut self.cells }, horizon);
        } else if pool_enabled() {
            let cells = std::mem::take(&mut self.cells);
            let state = &mut self.state;
            let (cells, ()) = pool::with_pool(
                workers,
                cells,
                |_, cell, (end, inclusive): (SimTime, bool)| cell.run_window(end, inclusive),
                |p| state.run_loop(&mut PoolRunner { pool: p }, horizon),
            );
            self.cells = cells;
        } else {
            self.state.run_loop(
                &mut SpawnRunner {
                    cells: &mut self.cells,
                    workers,
                },
                horizon,
            );
        }
        debug_assert!(
            self.cells
                .iter()
                .all(|c| c.inbound.front().map_or(true, |e| e.key.fire_at > self.state.now)),
            "a cross-shard message was staged into the past"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test world: logs every delivery, periodically pings a partner.
    struct Pinger {
        partner: ShardId,
        period: SimDuration,
        latency: SimDuration,
        log: Vec<(SimTime, ShardId, u64)>,
        sent: u64,
    }

    impl ShardWorld for Pinger {
        type Event = ();
        type Msg = u64;

        fn handle(&mut self, _e: (), ctx: &mut ShardCtx<'_, '_, (), u64>) {
            ctx.send(self.partner, ctx.now() + self.latency, self.sent);
            self.sent += 1;
            ctx.after(self.period, ());
        }

        fn on_message(&mut self, src: ShardId, msg: u64, ctx: &mut ShardCtx<'_, '_, (), u64>) {
            self.log.push((ctx.now(), src, msg));
        }
    }

    fn ping_ring(n: u16, latency: SimDuration) -> Vec<Pinger> {
        (0..n)
            .map(|i| Pinger {
                partner: ShardId((i + 1) % n),
                period: SimDuration::from_secs(30),
                latency,
                log: Vec::new(),
                sent: 0,
            })
            .collect()
    }

    #[test]
    fn messages_cross_shards_and_arrive_on_time() {
        let lookahead = SimDuration::from_secs(60);
        let mut sim = ShardedSim::new(ping_ring(3, lookahead), lookahead);
        for s in 0..3 {
            sim.schedule_at(s, SimTime::ZERO, ());
        }
        sim.run_until(SimTime::from_secs(300));
        // Shard 1 hears shard 0's ping from t=0 at t=60, t=30 at 90, ...
        let log = &sim.world(1).log;
        assert!(!log.is_empty());
        assert_eq!(log[0], (SimTime::from_secs(60), ShardId(0), 0));
        assert_eq!(log[1], (SimTime::from_secs(90), ShardId(0), 1));
        assert!(sim.messages_delivered() > 0);
    }

    #[test]
    fn identical_logs_at_any_worker_count_and_epoch_split() {
        let lookahead = SimDuration::from_secs(60);
        let run = |workers: usize, epoch: SimDuration| {
            set_shard_workers(workers);
            let mut sim = ShardedSim::with_epoch(ping_ring(4, lookahead), lookahead, epoch);
            for s in 0..4 {
                sim.schedule_at(s, SimTime::ZERO, ());
            }
            sim.run_until(SimTime::from_secs(600));
            set_shard_workers(0);
            let logs: Vec<_> = sim.worlds().map(|w| w.log.clone()).collect();
            logs
        };
        let baseline = run(1, lookahead);
        for workers in [2, 4, 8] {
            assert_eq!(run(workers, lookahead), baseline, "diverged at {workers} workers");
        }
        for epoch in [SimDuration::from_secs(30), SimDuration::from_secs(20)] {
            assert_eq!(run(4, epoch), baseline, "diverged at epoch {epoch}");
        }
    }

    #[test]
    fn messages_deliver_before_local_events_at_the_same_instant() {
        /// Shard 1 schedules a local marker at t=60; shard 0 sends a
        /// message that also fires at t=60. The message must win the tie.
        struct TieWorld {
            order: Vec<&'static str>,
        }
        impl ShardWorld for TieWorld {
            type Event = &'static str;
            type Msg = ();
            fn handle(&mut self, e: &'static str, ctx: &mut ShardCtx<'_, '_, &'static str, ()>) {
                if e == "send" {
                    ctx.send(ShardId(1), SimTime::from_secs(60), ());
                } else {
                    self.order.push(e);
                }
            }
            fn on_message(&mut self, _s: ShardId, _m: (), _c: &mut ShardCtx<'_, '_, &'static str, ()>) {
                self.order.push("msg");
            }
        }
        let worlds = vec![TieWorld { order: vec![] }, TieWorld { order: vec![] }];
        let mut sim = ShardedSim::new(worlds, SimDuration::from_secs(60));
        sim.schedule_at(0, SimTime::ZERO, "send");
        sim.schedule_at(1, SimTime::from_secs(60), "local");
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(sim.world(1).order, vec!["msg", "local"]);
    }

    #[test]
    #[should_panic(expected = "below the configured lookahead")]
    fn undershooting_the_lookahead_panics() {
        let lookahead = SimDuration::from_secs(60);
        let mut worlds = ping_ring(2, SimDuration::from_secs(10));
        worlds[0].latency = SimDuration::from_secs(10); // below lookahead
        let mut sim = ShardedSim::new(worlds, lookahead);
        sim.schedule_at(0, SimTime::ZERO, ());
        sim.run_until(SimTime::from_secs(120));
    }

    #[test]
    fn final_window_is_inclusive_and_leftovers_stay_pending() {
        let lookahead = SimDuration::from_secs(60);
        let mut sim = ShardedSim::new(ping_ring(2, lookahead), lookahead);
        sim.schedule_at(0, SimTime::ZERO, ());
        // Horizon exactly on a tick: the t=120 local tick must run.
        sim.run_until(SimTime::from_secs(120));
        assert_eq!(sim.world(0).sent, 5); // ticks at 0,30,60,90,120
        // The last sends fire past the horizon: pending, not lost.
        assert!(sim.messages_pending() > 0);
        let before = sim.world(1).log.len();
        sim.run_until(SimTime::from_secs(200));
        assert!(sim.world(1).log.len() > before);
    }

    #[test]
    fn steps_count_events_and_messages() {
        let lookahead = SimDuration::from_secs(60);
        let mut sim = ShardedSim::new(ping_ring(2, lookahead), lookahead);
        sim.schedule_at(0, SimTime::ZERO, ());
        sim.run_until(SimTime::from_secs(60));
        // Shard 0 ticked at 0,30,60; shard 1 heard the t=0 ping at 60.
        assert_eq!(sim.total_steps(), 4);
        assert_eq!(sim.epochs(), 1);
    }

    /// Serializes tests that flip the process-wide pool/fast-forward
    /// knobs: epoch accounting (unlike the output) legitimately depends
    /// on the fast-forward setting, so concurrent toggling would race.
    static KNOBS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn fast_forward_skips_empty_windows_but_keeps_the_grid_total() {
        let _serial = KNOBS.lock().unwrap_or_else(|e| e.into_inner());
        // One event every hour, 60 s epochs: 59 of every 60 windows are
        // empty. The grid total must match the slow path's epoch count
        // and the logs must be byte-identical with fast-forward off.
        let lookahead = SimDuration::from_secs(60);
        let run = |ff: bool| {
            set_fast_forward(ff);
            let mut worlds = ping_ring(2, lookahead);
            for w in &mut worlds {
                w.period = SimDuration::from_secs(3600);
            }
            let mut sim = ShardedSim::new(worlds, lookahead);
            sim.schedule_at(0, SimTime::ZERO, ());
            sim.run_until(SimTime::from_secs(6 * 3600));
            set_fast_forward(true);
            let logs: Vec<_> = sim.worlds().map(|w| w.log.clone()).collect();
            (logs, sim.epochs(), sim.epochs_fast_forwarded(), sim.total_steps())
        };
        let (logs_ff, epochs_ff, skipped_ff, steps_ff) = run(true);
        let (logs_slow, epochs_slow, skipped_slow, steps_slow) = run(false);
        assert_eq!(logs_ff, logs_slow);
        assert_eq!(steps_ff, steps_slow);
        assert_eq!(skipped_slow, 0);
        assert_eq!(epochs_ff + skipped_ff, epochs_slow, "grid total must be invariant");
        assert!(skipped_ff > 5 * epochs_ff, "most windows should fast-forward");
    }

    #[test]
    fn fast_forward_with_nothing_due_jumps_to_the_horizon() {
        let _serial = KNOBS.lock().unwrap_or_else(|e| e.into_inner());
        let lookahead = SimDuration::from_secs(60);
        let mut sim = ShardedSim::new(ping_ring(2, lookahead), lookahead);
        // No initial events at all: every window is empty.
        sim.run_until(SimTime::from_secs(3600 + 30)); // non-dividing horizon
        assert_eq!(sim.epochs(), 0);
        assert_eq!(sim.epochs_fast_forwarded(), 61); // ceil(3630/60)
        assert_eq!(sim.now(), SimTime::from_secs(3630));
    }

    #[test]
    fn pool_and_spawn_paths_match_inline_with_and_without_fast_forward() {
        let _serial = KNOBS.lock().unwrap_or_else(|e| e.into_inner());
        let lookahead = SimDuration::from_secs(60);
        let run = |workers: usize, pool_on: bool, ff: bool| {
            set_shard_workers(workers);
            set_pool_enabled(pool_on);
            set_fast_forward(ff);
            let mut worlds = ping_ring(4, lookahead);
            for (i, w) in worlds.iter_mut().enumerate() {
                // Mixed cadence so some windows are empty, some not.
                w.period = SimDuration::from_secs(if i % 2 == 0 { 30 } else { 900 });
            }
            let mut sim = ShardedSim::with_epoch(worlds, lookahead, SimDuration::from_secs(20));
            for s in 0..4 {
                sim.schedule_at(s, SimTime::ZERO, ());
            }
            sim.run_until(SimTime::from_secs(3600));
            set_shard_workers(0);
            set_pool_enabled(true);
            set_fast_forward(true);
            let logs: Vec<_> = sim.worlds().map(|w| w.log.clone()).collect();
            (logs, sim.total_steps(), sim.messages_delivered(), sim.epoch_windows())
        };
        let baseline = run(1, true, false);
        for workers in [1, 2, 4] {
            for pool_on in [true, false] {
                for ff in [true, false] {
                    assert_eq!(
                        run(workers, pool_on, ff),
                        baseline,
                        "diverged at workers={workers} pool={pool_on} ff={ff}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "needs >= 1 shard")]
    fn empty_shard_set_panics() {
        let _ = ShardedSim::<Pinger>::new(Vec::new(), SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "epoch must satisfy")]
    fn oversized_epoch_panics() {
        let _ = ShardedSim::with_epoch(
            ping_ring(2, SimDuration::from_secs(60)),
            SimDuration::from_secs(60),
            SimDuration::from_secs(120),
        );
    }
}
