//! # spotcheck-simcore
//!
//! Deterministic discrete-event simulation core for the SpotCheck
//! reproduction (EuroSys 2015).
//!
//! Everything in this crate is domain-agnostic infrastructure:
//!
//! - [`time`] — integer-microsecond simulated time ([`time::SimTime`],
//!   [`time::SimDuration`]).
//! - [`queue`] — a deterministic (FIFO-on-ties) event queue with two
//!   bit-identical backends: binary heap and hierarchical timing wheel
//!   ([`wheel`]).
//! - [`engine`] — the [`engine::World`] trait and [`engine::Simulation`]
//!   driver.
//! - [`rng`] — seedable, forkable xoshiro256** RNG ([`rng::SimRng`]).
//! - [`dist`] — the continuous distributions the models need, including the
//!   [`dist::QuartileCalibrated`] family matched to the paper's Table 1.
//! - [`stats`] — sample summaries, ECDFs, Pearson correlation,
//!   time-weighted accumulators.
//! - [`bitset`] — page-tracking bit sets.
//! - [`fluid`] — flow-level max-min fair bandwidth sharing (the substrate
//!   for checkpoint/migration/restore transfer modeling).
//! - [`series`] — piecewise-constant time series (spot-price traces).
//! - [`metrics`] — thread-local simulation-event counters feeding the
//!   harness throughput numbers.
//! - [`parallel`] — deterministic fork-join parallel map on std threads
//!   (ordered collection, event-count fold-back).
//! - [`pool`] — persistent epoch worker pool with per-slot affinity
//!   ([`pool::with_pool`]), the low-overhead fork-join the sharded engine
//!   uses for its per-epoch windows.
//! - [`slab`] — dense entity storage: a generational slab and the
//!   id-indexed [`slab::IdMap`] whose iteration order matches `BTreeMap`.
//! - [`varint`] — LEB128 integers for the binary trace-library format.
//! - [`digest`] — incremental 64-bit state digests ([`digest::Digest64`]).
//! - [`shard`] — deterministic sharded simulation: per-shard event loops
//!   with Lamport-ordered cross-shard messages exchanged at conservative
//!   epoch boundaries ([`shard::ShardedSim`]).
//!
//! Determinism contract: given the same seeds and inputs, every simulation
//! built on this crate replays bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod digest;
pub mod dist;
pub mod engine;
pub mod fluid;
pub mod metrics;
pub mod parallel;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod series;
pub mod shard;
pub mod slab;
pub mod stats;
pub mod time;
pub mod varint;
pub mod wheel;

pub use bitset::BitSet;
pub use engine::{Scheduler, Simulation, StopReason, World};
pub use queue::{EventQueue, QueueBackend};
pub use slab::{DenseKey, IdMap, Slab};
pub use rng::SimRng;
pub use series::StepSeries;
pub use time::{SimDuration, SimTime};
