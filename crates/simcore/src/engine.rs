//! Discrete-event simulation engine.
//!
//! The engine owns a [`World`] (the model state) and an event queue. Each
//! step pops the earliest event, advances the clock to its timestamp, and
//! hands it to the world, which may schedule further events through the
//! [`Scheduler`] it receives.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Scheduling context handed to event handlers.
///
/// Wraps the current simulation clock and the event queue so handlers can
/// schedule follow-up events relative to *now* without being able to move the
/// clock themselves.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// Builds a scheduler over an external queue (the sharded engine's
    /// per-shard event loops construct these outside [`Simulation`]).
    pub(crate) fn over(now: SimTime, queue: &'a mut EventQueue<E>) -> Self {
        Scheduler { now, queue }
    }

    /// Returns the current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past; scheduling into the past would break
    /// the causality of the simulation.
    pub fn at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at}, now={}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` to fire immediately (at the current instant, after
    /// all events already queued for this instant).
    pub fn immediately(&mut self, event: E) {
        self.queue.push(self.now, event);
    }
}

/// A simulation model: state plus an event handler.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handles one event at its firing time.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// Why [`Simulation::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained.
    QueueEmpty,
    /// The next event lies beyond the requested horizon.
    HorizonReached,
    /// The configured step limit was hit (a runaway-model backstop).
    StepLimit,
}

/// A discrete-event simulation over a [`World`].
///
/// # Examples
///
/// ```
/// use spotcheck_simcore::engine::{Scheduler, Simulation, World};
/// use spotcheck_simcore::time::{SimDuration, SimTime};
///
/// /// Counts down from `n`, one tick per second.
/// struct Countdown {
///     n: u32,
/// }
///
/// impl World for Countdown {
///     type Event = ();
///     fn handle(&mut self, _event: (), sched: &mut Scheduler<'_, ()>) {
///         self.n -= 1;
///         if self.n > 0 {
///             sched.after(SimDuration::from_secs(1), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Countdown { n: 3 });
/// sim.schedule_at(SimTime::ZERO, ());
/// sim.run_to_completion();
/// assert_eq!(sim.world().n, 0);
/// assert_eq!(sim.now(), SimTime::from_secs(2));
/// ```
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    steps: u64,
    step_limit: u64,
}

impl<W: World> Simulation<W> {
    /// Default backstop on the number of processed events.
    pub const DEFAULT_STEP_LIMIT: u64 = u64::MAX;

    /// Creates a simulation at time zero over `world`.
    pub fn new(world: W) -> Self {
        Simulation::new_with_queue(world, EventQueue::new())
    }

    /// Creates a simulation at time zero over `world` with an explicitly
    /// constructed event queue.
    ///
    /// [`Simulation::new`] latches the process-wide default queue backend
    /// at construction; long-lived hosts (a daemon running several engine
    /// lifetimes) should instead pin the backend per simulation via
    /// [`EventQueue::with_backend`] and this constructor, so a later
    /// [`crate::queue::set_default_backend`] cannot change the meaning of
    /// an already-running simulation's configuration.
    pub fn new_with_queue(world: W, queue: EventQueue<W::Event>) -> Self {
        Simulation {
            world,
            queue,
            now: SimTime::ZERO,
            steps: 0,
            step_limit: Self::DEFAULT_STEP_LIMIT,
        }
    }

    /// Sets a backstop on the total number of events processed.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Returns the current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Returns a shared reference to the model.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Returns an exclusive reference to the model.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulation and returns the model.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an initial event at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current simulation time.
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at}, now={}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules an initial event `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, event: W::Event) {
        self.queue.push(self.now + delay, event);
    }

    /// Processes a single event, if any is pending.
    ///
    /// Returns `true` if an event was processed.
    pub fn step(&mut self) -> bool {
        let Some((t, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "event queue produced an out-of-order event");
        self.now = t;
        self.steps += 1;
        let mut sched = Scheduler {
            now: self.now,
            queue: &mut self.queue,
        };
        self.world.handle(event, &mut sched);
        // Feed the peak-depth gauge after the handler's pushes land — the
        // queue is at its largest right here.
        crate::metrics::note_queue_depth(self.queue.len() as u64);
        true
    }

    /// The number of events currently pending in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The firing time of the earliest pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Runs until the queue drains, the next event would fire after
    /// `horizon`, or the step limit is hit.
    ///
    /// Events firing exactly at `horizon` are processed. On
    /// [`StopReason::HorizonReached`], the clock is advanced to `horizon` so
    /// that time-weighted accounting can close out cleanly.
    pub fn run_until(&mut self, horizon: SimTime) -> StopReason {
        loop {
            if self.steps >= self.step_limit {
                return StopReason::StepLimit;
            }
            match self.queue.peek_time() {
                None => return StopReason::QueueEmpty,
                Some(t) if t > horizon => {
                    self.now = horizon.max(self.now);
                    return StopReason::HorizonReached;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Runs until the queue drains or the step limit is hit.
    pub fn run_to_completion(&mut self) -> StopReason {
        self.run_until(SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records the order in which events arrive.
    struct Recorder {
        log: Vec<(SimTime, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, event: u32, sched: &mut Scheduler<'_, u32>) {
            self.log.push((sched.now(), event));
            // Event 1 spawns a chain: 10 at +1s, 11 immediately.
            if event == 1 {
                sched.after(SimDuration::from_secs(1), 10);
                sched.immediately(11);
            }
        }
    }

    #[test]
    fn processes_in_causal_order() {
        let mut sim = Simulation::new(Recorder { log: Vec::new() });
        sim.schedule_at(SimTime::from_secs(5), 2);
        sim.schedule_at(SimTime::from_secs(1), 1);
        assert_eq!(sim.run_to_completion(), StopReason::QueueEmpty);
        assert_eq!(
            sim.world().log,
            vec![
                (SimTime::from_secs(1), 1),
                (SimTime::from_secs(1), 11),
                (SimTime::from_secs(2), 10),
                (SimTime::from_secs(5), 2),
            ]
        );
    }

    #[test]
    fn horizon_stops_and_advances_clock() {
        let mut sim = Simulation::new(Recorder { log: Vec::new() });
        sim.schedule_at(SimTime::from_secs(10), 2);
        let reason = sim.run_until(SimTime::from_secs(3));
        assert_eq!(reason, StopReason::HorizonReached);
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert!(sim.world().log.is_empty());
        // Event at exactly the horizon is processed.
        let reason = sim.run_until(SimTime::from_secs(10));
        assert_eq!(reason, StopReason::QueueEmpty);
        assert_eq!(sim.world().log.len(), 1);
    }

    #[test]
    fn step_limit_is_a_backstop() {
        /// Reschedules itself forever.
        struct Loopy;
        impl World for Loopy {
            type Event = ();
            fn handle(&mut self, _e: (), sched: &mut Scheduler<'_, ()>) {
                sched.after(SimDuration::from_secs(1), ());
            }
        }
        let mut sim = Simulation::new(Loopy).with_step_limit(100);
        sim.schedule_at(SimTime::ZERO, ());
        assert_eq!(sim.run_to_completion(), StopReason::StepLimit);
        assert_eq!(sim.steps(), 100);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new(Recorder { log: Vec::new() });
        sim.schedule_at(SimTime::from_secs(1), 1);
        sim.run_to_completion();
        sim.schedule_at(SimTime::ZERO, 2);
    }

    #[test]
    fn step_returns_false_when_empty() {
        let mut sim = Simulation::new(Recorder { log: Vec::new() });
        assert!(!sim.step());
    }
}
