//! Dense entity storage: a generational slab and an id-indexed map.
//!
//! Fleet-scale simulations keep tens of thousands of live entities (hosts,
//! nested VMs, migrations, pending platform ops). Storing them in
//! `BTreeMap`s costs O(log n) pointer-chasing per lookup and scatters
//! iteration across the heap; at 50k entities the controller's hot scans
//! (first-fit placement, price-change sweeps) spend most of their time in
//! cache misses. This module provides two dense alternatives:
//!
//! - [`Slab<T>`] — a free-list slab addressed by generational [`Handle`]s
//!   (u32 index + u32 generation). Slots are reused after removal; the
//!   generation check makes stale handles miss instead of aliasing a new
//!   occupant (the classic ABA guard). Use it for entities whose identity
//!   is *internal* to one owner and whose iteration order is immaterial.
//!
//! - [`IdMap<K, V>`] — a `Vec<Option<V>>` indexed directly by an entity id
//!   ([`DenseKey`]). Every id in this codebase (`InstanceId`, `NestedVmId`,
//!   `OpId`, ...) is a monotonically allocated `u64` newtype, so the vector
//!   stays dense and — crucially — **index-order iteration equals id-order
//!   iteration**, which is exactly the order a `BTreeMap<Id, V>` yields.
//!   Swapping one for the other therefore cannot change any simulated
//!   outcome, only its speed. Slots of removed entities are never reused
//!   (ids are never reallocated), so the vector's length tracks the
//!   all-time id high-water mark, not the live count.

/// A key that maps 1:1 onto a dense array index.
///
/// Implemented by the monotonically allocated id newtypes (`InstanceId`,
/// `NestedVmId`, `OpId`, ...). The contract: `from_dense_index` is the
/// inverse of `dense_index`, and ids are allocated in increasing index
/// order so an [`IdMap`] stays dense and iterates in id order.
pub trait DenseKey: Copy {
    /// The array index this key addresses.
    fn dense_index(self) -> usize;
    /// Reconstructs the key from its array index.
    fn from_dense_index(index: usize) -> Self;
}

/// A generational handle into a [`Slab`].
///
/// `index` addresses the slot; `generation` must match the slot's current
/// generation for the handle to resolve, so handles to removed entries
/// return `None` instead of aliasing whatever was inserted into the
/// recycled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Handle {
    index: u32,
    generation: u32,
}

impl Handle {
    /// The slot index (stable for the lifetime of the entry).
    pub fn index(self) -> u32 {
        self.index
    }

    /// The generation the handle was minted with.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

#[derive(Debug, Clone)]
enum Slot<T> {
    Occupied { generation: u32, value: T },
    Vacant { generation: u32 },
}

/// A dense free-list slab with generational handles.
///
/// O(1) insert/remove/lookup; removed slots are recycled with a bumped
/// generation. Iteration visits occupied slots in index order (which is
/// *not* insertion order once slots recycle — don't depend on it for
/// deterministic simulation state; use [`IdMap`] there).
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, reusing a vacant slot if one exists.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX` slots.
    pub fn insert(&mut self, value: T) -> Handle {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            let generation = match slot {
                Slot::Vacant { generation } => *generation,
                Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
            };
            *slot = Slot::Occupied { generation, value };
            Handle { index, generation }
        } else {
            let index = u32::try_from(self.slots.len()).expect("slab capacity exceeded");
            self.slots.push(Slot::Occupied {
                generation: 0,
                value,
            });
            Handle {
                index,
                generation: 0,
            }
        }
    }

    /// Removes the entry behind `handle`, returning its value. Stale
    /// handles (wrong generation, or already removed) return `None`.
    pub fn remove(&mut self, handle: Handle) -> Option<T> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == handle.generation => {
                let next_gen = generation.wrapping_add(1);
                let old = std::mem::replace(
                    slot,
                    Slot::Vacant {
                        generation: next_gen,
                    },
                );
                self.free.push(handle.index);
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Vacant { .. } => unreachable!("matched occupied above"),
                }
            }
            _ => None,
        }
    }

    /// Shared access; `None` for stale handles.
    pub fn get(&self, handle: Handle) -> Option<&T> {
        match self.slots.get(handle.index as usize)? {
            Slot::Occupied { generation, value } if *generation == handle.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Exclusive access; `None` for stale handles.
    pub fn get_mut(&mut self, handle: Handle) -> Option<&mut T> {
        match self.slots.get_mut(handle.index as usize)? {
            Slot::Occupied { generation, value } if *generation == handle.generation => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Whether `handle` resolves to a live entry.
    pub fn contains(&self, handle: Handle) -> bool {
        self.get(handle).is_some()
    }

    /// Iterates live entries in slot-index order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, slot)| match slot {
            Slot::Occupied { generation, value } => Some((
                Handle {
                    index: i as u32,
                    generation: *generation,
                },
                value,
            )),
            Slot::Vacant { .. } => None,
        })
    }
}

/// A map from a dense id ([`DenseKey`]) to a value, backed by
/// `Vec<Option<V>>`.
///
/// Drop-in replacement for the controller's `BTreeMap<Id, V>` state: all
/// ids are allocated monotonically and never reused, so the backing vector
/// is dense and iteration in index order reproduces `BTreeMap`'s id-order
/// iteration exactly — same visit order, same simulated outcome, O(1)
/// per lookup instead of O(log n).
///
/// Iteration yields `(K, &V)` (keys by value, unlike `BTreeMap`'s `&K`) —
/// the ids are tiny `Copy` newtypes.
#[derive(Debug, Clone)]
pub struct IdMap<K, V> {
    slots: Vec<Option<V>>,
    len: usize,
    _key: std::marker::PhantomData<K>,
}

impl<K: DenseKey, V> Default for IdMap<K, V> {
    fn default() -> Self {
        IdMap::new()
    }
}

impl<K: DenseKey, V> IdMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        IdMap {
            slots: Vec::new(),
            len: 0,
            _key: std::marker::PhantomData,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` under `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let i = key.dense_index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let old = self.slots[i].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value under `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let old = self.slots.get_mut(key.dense_index())?.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Shared lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.slots.get(key.dense_index())?.as_ref()
    }

    /// Exclusive lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.slots.get_mut(key.dense_index())?.as_mut()
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Returns the value under `key`, inserting `V::default()` first if
    /// absent (`BTreeMap::entry(k).or_default()`).
    pub fn or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        self.or_insert(key, V::default())
    }

    /// Returns the value under `key`, inserting `value` first if absent
    /// (`BTreeMap::entry(k).or_insert(v)`).
    pub fn or_insert(&mut self, key: K, value: V) -> &mut V {
        self.or_insert_with(key, || value)
    }

    /// Returns the value under `key`, inserting `make()` first if absent
    /// (`BTreeMap::entry(k).or_insert_with(f)`).
    pub fn or_insert_with(&mut self, key: K, make: impl FnOnce() -> V) -> &mut V {
        let i = key.dense_index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let slot = &mut self.slots[i];
        if slot.is_none() {
            *slot = Some(make());
            self.len += 1;
        }
        slot.as_mut().expect("slot populated above")
    }

    /// Iterates entries in id order (matching `BTreeMap<Id, V>`).
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| Some((K::from_dense_index(i), v.as_ref()?)))
    }

    /// Iterates entries mutably in id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, v)| Some((K::from_dense_index(i), v.as_mut()?)))
    }

    /// Iterates keys in id order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in id order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(|v| v.as_ref())
    }

    /// Iterates values mutably in id order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().filter_map(|v| v.as_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct TestId(u64);

    impl DenseKey for TestId {
        fn dense_index(self) -> usize {
            self.0 as usize
        }
        fn from_dense_index(index: usize) -> Self {
            TestId(index as u64)
        }
    }

    #[test]
    fn slab_insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(a), None);
        assert!(!s.contains(a));
        assert!(s.contains(b));
    }

    #[test]
    fn slab_recycles_slots_with_new_generation() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.remove(a).unwrap();
        let b = s.insert(2u32);
        // Slot index is reused...
        assert_eq!(a.index(), b.index());
        // ...but the stale handle does not alias the new occupant.
        assert_ne!(a.generation(), b.generation());
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn slab_get_mut_and_iter() {
        let mut s = Slab::new();
        let a = s.insert(10u32);
        let b = s.insert(20u32);
        s.remove(a).unwrap();
        *s.get_mut(b).unwrap() += 1;
        let items: Vec<u32> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(items, vec![21]);
        assert!(!s.is_empty());
    }

    #[test]
    fn slab_double_remove_is_none() {
        let mut s = Slab::new();
        let a = s.insert(());
        assert!(s.remove(a).is_some());
        assert!(s.remove(a).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn idmap_behaves_like_btreemap() {
        use std::collections::BTreeMap;
        let mut dense: IdMap<TestId, u64> = IdMap::new();
        let mut tree: BTreeMap<u64, u64> = BTreeMap::new();
        // Sparse inserts, overwrites, removals.
        for (k, v) in [(3u64, 30u64), (0, 1), (7, 70), (3, 31), (5, 50)] {
            assert_eq!(dense.insert(TestId(k), v), tree.insert(k, v));
        }
        assert_eq!(dense.remove(&TestId(5)), tree.remove(&5));
        assert_eq!(dense.remove(&TestId(9)), tree.remove(&9));
        assert_eq!(dense.len(), tree.len());
        assert_eq!(dense.get(&TestId(3)), tree.get(&3));
        assert_eq!(dense.contains_key(&TestId(0)), tree.contains_key(&0));
        let d: Vec<(u64, u64)> = dense.iter().map(|(k, v)| (k.0, *v)).collect();
        let t: Vec<(u64, u64)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(d, t, "iteration order must match BTreeMap id order");
        let dk: Vec<u64> = dense.keys().map(|k| k.0).collect();
        let tk: Vec<u64> = tree.keys().copied().collect();
        assert_eq!(dk, tk);
        assert_eq!(
            dense.values().copied().collect::<Vec<_>>(),
            tree.values().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn idmap_entry_helpers() {
        let mut m: IdMap<TestId, Vec<u32>> = IdMap::new();
        m.or_default(TestId(2)).push(1);
        m.or_default(TestId(2)).push(2);
        assert_eq!(m.get(&TestId(2)), Some(&vec![1, 2]));
        let mut c: IdMap<TestId, u32> = IdMap::new();
        *c.or_insert(TestId(0), 5) += 1;
        *c.or_insert(TestId(0), 99) += 1;
        assert_eq!(c.get(&TestId(0)), Some(&7));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn idmap_iter_mut_and_values_mut() {
        let mut m: IdMap<TestId, u32> = IdMap::new();
        m.insert(TestId(1), 10);
        m.insert(TestId(4), 40);
        for (_, v) in m.iter_mut() {
            *v += 1;
        }
        for v in m.values_mut() {
            *v *= 2;
        }
        assert_eq!(
            m.iter().map(|(k, v)| (k.0, *v)).collect::<Vec<_>>(),
            vec![(1, 22), (4, 82)]
        );
        assert!(!m.is_empty());
    }
}
