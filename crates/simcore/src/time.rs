//! Simulated time.
//!
//! The simulator measures time in integer **microseconds** from the start of
//! the simulation. Integer time makes event ordering exact and runs
//! bit-for-bit reproducible; microsecond resolution is fine enough to resolve
//! page-level transfer times (a 4 KiB page at 1 Gbit/s takes ~33 us) while a
//! `u64` still spans ~584 000 years, far beyond the 6-month horizons the
//! SpotCheck evaluation uses.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant in simulated time, measured in microseconds from simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant, usable as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates an instant `hours` hours after simulation start.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600 * MICROS_PER_SEC)
    }

    /// Creates an instant `days` days after simulation start.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * 86_400 * MICROS_PER_SEC)
    }

    /// Returns the number of whole microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time since simulation start in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the time since simulation start in (fractional) hours.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3_600.0
    }

    /// Returns the duration elapsed since `earlier`, or zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600 * MICROS_PER_SEC)
    }

    /// Creates a duration of `days` days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400 * MICROS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond and clamping negatives to zero.
    ///
    /// Non-finite inputs map to [`SimDuration::MAX`] (positive infinity) or
    /// zero (NaN and negative infinity); this keeps fluid-model arithmetic
    /// (which can legitimately produce `inf` time-to-completion for a stalled
    /// flow) panic-free.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration(0);
        }
        let micros = secs * MICROS_PER_SEC as f64;
        if micros >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(micros.round() as u64)
        }
    }

    /// Returns the number of whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the duration in (fractional) hours.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3_600.0
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Adds two durations, saturating at [`SimDuration::MAX`].
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Subtracts `other`, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative factor, rounding to the
    /// nearest microsecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: instant + duration exceeds u64 microseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: duration larger than elapsed time"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow in addition"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow in subtraction"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("SimDuration overflow in multiplication"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let micros = self.0;
        if micros == 0 {
            return write!(f, "0s");
        }
        if micros < 1_000 {
            return write!(f, "{micros}us");
        }
        if micros < MICROS_PER_SEC {
            return write!(f, "{:.3}ms", micros as f64 / 1_000.0);
        }
        let secs = micros as f64 / MICROS_PER_SEC as f64;
        if secs < 120.0 {
            return write!(f, "{secs:.3}s");
        }
        let total_secs = micros / MICROS_PER_SEC;
        let (days, rem) = (total_secs / 86_400, total_secs % 86_400);
        let (hours, rem) = (rem / 3_600, rem % 3_600);
        let (mins, secs) = (rem / 60, rem % 60);
        if days > 0 {
            write!(f, "{days}d{hours:02}h{mins:02}m{secs:02}s")
        } else if hours > 0 {
            write!(f, "{hours}h{mins:02}m{secs:02}s")
        } else {
            write!(f, "{mins}m{secs:02}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_hours(1), SimTime::from_secs(3_600));
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
        assert_eq!(SimDuration::from_days(2), SimDuration::from_hours(48));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(100);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
    }

    #[test]
    #[should_panic(expected = "SimTime::since")]
    fn since_panics_on_inversion() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1_500)
        );
        // Rounds to nearest microsecond.
        assert_eq!(
            SimDuration::from_secs_f64(0.000_000_4),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_secs_f64(0.000_000_6),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn secs_f64_roundtrip() {
        let d = SimDuration::from_micros(123_456_789);
        let rt = SimDuration::from_secs_f64(d.as_secs_f64());
        assert_eq!(d, rt);
    }

    #[test]
    fn mul_div() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2_500));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(90).to_string(), "90.000s");
        assert_eq!(SimDuration::from_secs(3_661).to_string(), "1h01m01s");
        assert_eq!(
            SimDuration::from_days(2).to_string(),
            "2d00h00m00s"
        );
        assert_eq!(SimTime::from_secs(5).to_string(), "t+5.000s");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }
}
