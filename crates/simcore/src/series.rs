//! Piecewise-constant time series.
//!
//! Spot prices are right-continuous step functions: the price set at instant
//! `t` holds until the next change. [`StepSeries`] stores such a series and
//! supports point queries, window statistics, and change iteration — the
//! primitives the market statistics (Figure 6) and the billing model need.

use crate::time::{SimDuration, SimTime};

/// A right-continuous piecewise-constant series of `f64` over simulated time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepSeries {
    /// Change points: strictly increasing times with the value from that
    /// instant onward.
    points: Vec<(SimTime, f64)>,
}

impl StepSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        StepSeries { points: Vec::new() }
    }

    /// Creates a series from change points.
    ///
    /// # Panics
    ///
    /// Panics if times are not strictly increasing or any value is
    /// non-finite.
    pub fn from_points(points: Vec<(SimTime, f64)>) -> Self {
        for w in points.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "StepSeries change points must be strictly increasing"
            );
        }
        assert!(
            points.iter().all(|(_, v)| v.is_finite()),
            "StepSeries values must be finite"
        );
        StepSeries { points }
    }

    /// Appends a change point at `t` with value `v`.
    ///
    /// Appending at the same instant as the last point overwrites it
    /// (last-writer-wins within an instant).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last change point or `v` is non-finite.
    pub fn push(&mut self, t: SimTime, v: f64) {
        assert!(v.is_finite(), "StepSeries::push: non-finite value {v}");
        match self.points.last_mut() {
            Some((last_t, last_v)) if *last_t == t => *last_v = v,
            Some((last_t, _)) => {
                assert!(
                    *last_t < t,
                    "StepSeries::push: time {t} precedes last point {last_t}"
                );
                self.points.push((t, v));
            }
            None => self.points.push((t, v)),
        }
    }

    /// Returns the number of change points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns true if the series has no change points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the change points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Returns the value at instant `t`, or `None` if `t` precedes the first
    /// change point (or the series is empty).
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        let idx = self.points.partition_point(|(pt, _)| *pt <= t);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].1)
        }
    }

    /// Returns the first change strictly after `t`, if any.
    pub fn next_change_after(&self, t: SimTime) -> Option<(SimTime, f64)> {
        let idx = self.points.partition_point(|(pt, _)| *pt <= t);
        self.points.get(idx).copied()
    }

    /// Returns the time of the first change point, if any.
    pub fn start(&self) -> Option<SimTime> {
        self.points.first().map(|(t, _)| *t)
    }

    /// Returns the time of the last change point, if any.
    pub fn end(&self) -> Option<SimTime> {
        self.points.last().map(|(t, _)| *t)
    }

    /// Returns the time-weighted mean of the series over `[from, to)`, or
    /// `None` if the window is empty or starts before the series does.
    pub fn mean_over(&self, from: SimTime, to: SimTime) -> Option<f64> {
        if to <= from {
            return None;
        }
        self.value_at(from)?;
        let mut acc = 0.0;
        let mut cursor = from;
        let mut value = self.value_at(from).expect("checked above");
        while cursor < to {
            let next = self
                .next_change_after(cursor)
                .map(|(t, _)| t)
                .unwrap_or(SimTime::MAX)
                .min(to);
            acc += value * next.since(cursor).as_secs_f64();
            if next < to {
                value = self.value_at(next).expect("change point has value");
            }
            cursor = next;
        }
        Some(acc / to.since(from).as_secs_f64())
    }

    /// Returns the fraction of `[from, to)` during which the value satisfies
    /// `pred`, or `None` for an invalid window.
    pub fn fraction_where(
        &self,
        from: SimTime,
        to: SimTime,
        mut pred: impl FnMut(f64) -> bool,
    ) -> Option<f64> {
        if to <= from {
            return None;
        }
        self.value_at(from)?;
        let mut on = SimDuration::ZERO;
        let mut cursor = from;
        let mut value = self.value_at(from).expect("checked above");
        while cursor < to {
            let next = self
                .next_change_after(cursor)
                .map(|(t, _)| t)
                .unwrap_or(SimTime::MAX)
                .min(to);
            if pred(value) {
                on += next.since(cursor);
            }
            if next < to {
                value = self.value_at(next).expect("change point has value");
            }
            cursor = next;
        }
        Some(on.as_secs_f64() / to.since(from).as_secs_f64())
    }

    /// Samples the series at a fixed `step`, starting at `from`, up to and
    /// excluding `to`. Instants before the first change point yield the first
    /// value (extension backward), so resampled traces align for correlation.
    pub fn resample(&self, from: SimTime, to: SimTime, step: SimDuration) -> Vec<f64> {
        assert!(!step.is_zero(), "resample step must be positive");
        let first = self.points.first().map(|(_, v)| *v).unwrap_or(0.0);
        let mut out = Vec::new();
        let mut t = from;
        while t < to {
            out.push(self.value_at(t).unwrap_or(first));
            t += step;
        }
        out
    }

    /// Returns the first instant in `[from, end-of-series]` at which `pred`
    /// holds, along with the value there, scanning change points (and the
    /// value holding at `from`).
    pub fn first_where(
        &self,
        from: SimTime,
        mut pred: impl FnMut(f64) -> bool,
    ) -> Option<(SimTime, f64)> {
        if let Some(v) = self.value_at(from) {
            if pred(v) {
                return Some((from, v));
            }
        }
        let idx = self.points.partition_point(|(pt, _)| *pt <= from);
        self.points[idx..].iter().copied().find(|(_, v)| pred(*v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> StepSeries {
        StepSeries::from_points(vec![
            (SimTime::from_secs(0), 1.0),
            (SimTime::from_secs(10), 3.0),
            (SimTime::from_secs(20), 2.0),
        ])
    }

    #[test]
    fn value_at_steps() {
        let s = series();
        assert_eq!(s.value_at(SimTime::from_secs(0)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_secs(9)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_secs(10)), Some(3.0));
        assert_eq!(s.value_at(SimTime::from_secs(25)), Some(2.0));
        let empty = StepSeries::new();
        assert_eq!(empty.value_at(SimTime::ZERO), None);
    }

    #[test]
    fn next_change_after_scans_forward() {
        let s = series();
        assert_eq!(
            s.next_change_after(SimTime::from_secs(0)),
            Some((SimTime::from_secs(10), 3.0))
        );
        assert_eq!(
            s.next_change_after(SimTime::from_secs(10)),
            Some((SimTime::from_secs(20), 2.0))
        );
        assert_eq!(s.next_change_after(SimTime::from_secs(20)), None);
    }

    #[test]
    fn push_appends_and_overwrites_same_instant() {
        let mut s = StepSeries::new();
        s.push(SimTime::from_secs(1), 5.0);
        s.push(SimTime::from_secs(1), 6.0);
        s.push(SimTime::from_secs(2), 7.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.value_at(SimTime::from_secs(1)), Some(6.0));
    }

    #[test]
    #[should_panic(expected = "precedes last point")]
    fn push_rejects_time_travel() {
        let mut s = StepSeries::new();
        s.push(SimTime::from_secs(2), 1.0);
        s.push(SimTime::from_secs(1), 1.0);
    }

    #[test]
    fn mean_over_weights_by_duration() {
        let s = series();
        // [0,20): 1.0 for 10s, 3.0 for 10s -> 2.0.
        assert_eq!(s.mean_over(SimTime::ZERO, SimTime::from_secs(20)), Some(2.0));
        // [5,15): 1.0 for 5s, 3.0 for 5s -> 2.0.
        assert_eq!(
            s.mean_over(SimTime::from_secs(5), SimTime::from_secs(15)),
            Some(2.0)
        );
        // Degenerate window.
        assert_eq!(s.mean_over(SimTime::from_secs(5), SimTime::from_secs(5)), None);
    }

    #[test]
    fn fraction_where_measures_condition() {
        let s = series();
        let frac = s
            .fraction_where(SimTime::ZERO, SimTime::from_secs(30), |v| v >= 2.0)
            .unwrap();
        // >= 2.0 during [10,30): 20 of 30 seconds.
        assert!((frac - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn resample_fixed_grid() {
        let s = series();
        let xs = s.resample(SimTime::ZERO, SimTime::from_secs(30), SimDuration::from_secs(10));
        assert_eq!(xs, vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn first_where_finds_crossings() {
        let s = series();
        assert_eq!(
            s.first_where(SimTime::ZERO, |v| v > 2.5),
            Some((SimTime::from_secs(10), 3.0))
        );
        // Already true at the query instant.
        assert_eq!(
            s.first_where(SimTime::from_secs(12), |v| v > 2.5),
            Some((SimTime::from_secs(12), 3.0))
        );
        assert_eq!(s.first_where(SimTime::ZERO, |v| v > 10.0), None);
    }

    #[test]
    fn start_end() {
        let s = series();
        assert_eq!(s.start(), Some(SimTime::ZERO));
        assert_eq!(s.end(), Some(SimTime::from_secs(20)));
    }
}
