//! Piecewise-constant time series.
//!
//! Spot prices are right-continuous step functions: the price set at instant
//! `t` holds until the next change. [`StepSeries`] stores such a series and
//! supports point queries, window statistics, and change iteration — the
//! primitives the market statistics (Figure 6) and the billing model need.

use crate::metrics;
use crate::time::{SimDuration, SimTime};

/// Iterator over the maximal constant segments of a [`StepSeries`]
/// intersected with a window `[from, to)`.
///
/// Produced by [`StepSeries::segments_in`]: one `O(log n)` seek at
/// construction, then an `O(1)` forward step per segment — the primitive
/// behind every window statistic, replacing per-step binary searches.
///
/// Yields `(start, end, value)` with `start < end`, `start` clamped to
/// `from` and `end` clamped to `to`. If the window begins before the first
/// change point, iteration starts at the first change point (the uncovered
/// prefix `[from, first)` yields nothing); [`Segments::covers_from`]
/// reports whether the series already had a value at `from`.
#[derive(Debug, Clone)]
pub struct Segments<'a> {
    points: &'a [(SimTime, f64)],
    /// Index of the next change point to consume.
    next: usize,
    /// Start of the segment to yield next.
    cursor: SimTime,
    /// Window end (exclusive).
    to: SimTime,
    /// Value holding at `cursor`, `None` once exhausted.
    value: Option<f64>,
    /// Whether the series had a value at the window start.
    covers_from: bool,
}

impl Segments<'_> {
    /// Returns true if the series has a value at the window's `from`
    /// instant (i.e. the window start does not precede the first change
    /// point). Window statistics that require full coverage check this.
    pub fn covers_from(&self) -> bool {
        self.covers_from
    }
}

impl Iterator for Segments<'_> {
    type Item = (SimTime, SimTime, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let value = self.value?;
        if self.cursor >= self.to {
            return None;
        }
        let start = self.cursor;
        match self.points.get(self.next) {
            Some(&(t, v)) if t < self.to => {
                self.cursor = t;
                self.value = Some(v);
                self.next += 1;
                Some((start, t, value))
            }
            _ => {
                self.value = None;
                Some((start, self.to, value))
            }
        }
    }
}

/// A right-continuous piecewise-constant series of `f64` over simulated time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepSeries {
    /// Change points: strictly increasing times with the value from that
    /// instant onward.
    points: Vec<(SimTime, f64)>,
}

impl StepSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        StepSeries { points: Vec::new() }
    }

    /// Creates a series from change points.
    ///
    /// # Panics
    ///
    /// Panics if times are not strictly increasing or any value is
    /// non-finite.
    pub fn from_points(points: Vec<(SimTime, f64)>) -> Self {
        for w in points.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "StepSeries change points must be strictly increasing"
            );
        }
        assert!(
            points.iter().all(|(_, v)| v.is_finite()),
            "StepSeries values must be finite"
        );
        StepSeries { points }
    }

    /// Builds a series from points the caller has already proven strictly
    /// increasing in time and finite in value — e.g. a decoder whose wire
    /// format makes violations unrepresentable (the trace archive's
    /// delta encoding). Skips the two [`StepSeries::from_points`]
    /// validation passes in release builds; debug builds still assert.
    pub fn from_points_trusted(points: Vec<(SimTime, f64)>) -> Self {
        debug_assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "StepSeries change points must be strictly increasing"
        );
        debug_assert!(
            points.iter().all(|(_, v)| v.is_finite()),
            "StepSeries values must be finite"
        );
        StepSeries { points }
    }

    /// Appends a change point at `t` with value `v`.
    ///
    /// Appending at the same instant as the last point overwrites it
    /// (last-writer-wins within an instant).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last change point or `v` is non-finite.
    pub fn push(&mut self, t: SimTime, v: f64) {
        assert!(v.is_finite(), "StepSeries::push: non-finite value {v}");
        match self.points.last_mut() {
            Some((last_t, last_v)) if *last_t == t => *last_v = v,
            Some((last_t, _)) => {
                assert!(
                    *last_t < t,
                    "StepSeries::push: time {t} precedes last point {last_t}"
                );
                self.points.push((t, v));
            }
            None => self.points.push((t, v)),
        }
    }

    /// Returns the number of change points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns true if the series has no change points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns the change points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Returns the value at instant `t`, or `None` if `t` precedes the first
    /// change point (or the series is empty).
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        let idx = self.points.partition_point(|(pt, _)| *pt <= t);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].1)
        }
    }

    /// Returns the first change strictly after `t`, if any.
    pub fn next_change_after(&self, t: SimTime) -> Option<(SimTime, f64)> {
        let idx = self.points.partition_point(|(pt, _)| *pt <= t);
        self.points.get(idx).copied()
    }

    /// Returns the time of the first change point, if any.
    pub fn start(&self) -> Option<SimTime> {
        self.points.first().map(|(t, _)| *t)
    }

    /// Returns the time of the last change point, if any.
    pub fn end(&self) -> Option<SimTime> {
        self.points.last().map(|(t, _)| *t)
    }

    /// Returns an iterator over the maximal constant segments of the series
    /// intersected with `[from, to)`: one `O(log n)` seek, then `O(1)` per
    /// segment. See [`Segments`] for the exact clamping semantics.
    pub fn segments_in(&self, from: SimTime, to: SimTime) -> Segments<'_> {
        let idx = self.points.partition_point(|(pt, _)| *pt <= from);
        if idx > 0 {
            Segments {
                points: &self.points,
                next: idx,
                cursor: from,
                to,
                value: Some(self.points[idx - 1].1),
                covers_from: true,
            }
        } else {
            // Window starts before the series: begin at the first change
            // point (if any), and report the partial coverage.
            Segments {
                points: &self.points,
                next: 1.min(self.points.len()),
                cursor: self.points.first().map(|(t, _)| *t).unwrap_or(to),
                to,
                value: self.points.first().map(|(_, v)| *v),
                covers_from: false,
            }
        }
    }

    /// Returns the time-weighted mean of the series over `[from, to)`, or
    /// `None` if the window is empty or starts before the series does.
    pub fn mean_over(&self, from: SimTime, to: SimTime) -> Option<f64> {
        if to <= from {
            return None;
        }
        let segments = self.segments_in(from, to);
        if !segments.covers_from() {
            return None;
        }
        let mut acc = 0.0;
        let mut walked = 0u64;
        for (start, end, value) in segments {
            acc += value * end.since(start).as_secs_f64();
            walked += 1;
        }
        metrics::add(walked);
        Some(acc / to.since(from).as_secs_f64())
    }

    /// Returns the fraction of `[from, to)` during which the value satisfies
    /// `pred`, or `None` for an invalid window.
    pub fn fraction_where(
        &self,
        from: SimTime,
        to: SimTime,
        mut pred: impl FnMut(f64) -> bool,
    ) -> Option<f64> {
        if to <= from {
            return None;
        }
        let segments = self.segments_in(from, to);
        if !segments.covers_from() {
            return None;
        }
        let mut on = SimDuration::ZERO;
        let mut walked = 0u64;
        for (start, end, value) in segments {
            if pred(value) {
                on += end.since(start);
            }
            walked += 1;
        }
        metrics::add(walked);
        Some(on.as_secs_f64() / to.since(from).as_secs_f64())
    }

    /// Samples the series at a fixed `step`, starting at `from`, up to and
    /// excluding `to`. Instants before the first change point yield the first
    /// value (extension backward), so resampled traces align for correlation.
    pub fn resample(&self, from: SimTime, to: SimTime, step: SimDuration) -> Vec<f64> {
        assert!(!step.is_zero(), "resample step must be positive");
        if to <= from {
            return Vec::new();
        }
        let first = self.points.first().map(|(_, v)| *v).unwrap_or(0.0);
        // One seek, then advance a cursor over the change points as the
        // sample grid moves forward (the grid and the points are both
        // sorted, so each change point is passed at most once).
        let mut idx = self.points.partition_point(|(pt, _)| *pt <= from);
        let expected = (to.since(from).as_micros() / step.as_micros().max(1)) as usize + 1;
        let mut out = Vec::with_capacity(expected.min(1 << 24));
        let mut t = from;
        while t < to {
            while idx < self.points.len() && self.points[idx].0 <= t {
                idx += 1;
            }
            out.push(if idx == 0 {
                first
            } else {
                self.points[idx - 1].1
            });
            t += step;
        }
        metrics::add(out.len() as u64);
        out
    }

    /// Returns the first instant in `[from, end-of-series]` at which `pred`
    /// holds, along with the value there, scanning change points (and the
    /// value holding at `from`).
    pub fn first_where(
        &self,
        from: SimTime,
        mut pred: impl FnMut(f64) -> bool,
    ) -> Option<(SimTime, f64)> {
        if let Some(v) = self.value_at(from) {
            if pred(v) {
                return Some((from, v));
            }
        }
        let idx = self.points.partition_point(|(pt, _)| *pt <= from);
        self.points[idx..].iter().copied().find(|(_, v)| pred(*v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> StepSeries {
        StepSeries::from_points(vec![
            (SimTime::from_secs(0), 1.0),
            (SimTime::from_secs(10), 3.0),
            (SimTime::from_secs(20), 2.0),
        ])
    }

    #[test]
    fn value_at_steps() {
        let s = series();
        assert_eq!(s.value_at(SimTime::from_secs(0)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_secs(9)), Some(1.0));
        assert_eq!(s.value_at(SimTime::from_secs(10)), Some(3.0));
        assert_eq!(s.value_at(SimTime::from_secs(25)), Some(2.0));
        let empty = StepSeries::new();
        assert_eq!(empty.value_at(SimTime::ZERO), None);
    }

    #[test]
    fn next_change_after_scans_forward() {
        let s = series();
        assert_eq!(
            s.next_change_after(SimTime::from_secs(0)),
            Some((SimTime::from_secs(10), 3.0))
        );
        assert_eq!(
            s.next_change_after(SimTime::from_secs(10)),
            Some((SimTime::from_secs(20), 2.0))
        );
        assert_eq!(s.next_change_after(SimTime::from_secs(20)), None);
    }

    #[test]
    fn push_appends_and_overwrites_same_instant() {
        let mut s = StepSeries::new();
        s.push(SimTime::from_secs(1), 5.0);
        s.push(SimTime::from_secs(1), 6.0);
        s.push(SimTime::from_secs(2), 7.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.value_at(SimTime::from_secs(1)), Some(6.0));
    }

    #[test]
    #[should_panic(expected = "precedes last point")]
    fn push_rejects_time_travel() {
        let mut s = StepSeries::new();
        s.push(SimTime::from_secs(2), 1.0);
        s.push(SimTime::from_secs(1), 1.0);
    }

    #[test]
    fn mean_over_weights_by_duration() {
        let s = series();
        // [0,20): 1.0 for 10s, 3.0 for 10s -> 2.0.
        assert_eq!(s.mean_over(SimTime::ZERO, SimTime::from_secs(20)), Some(2.0));
        // [5,15): 1.0 for 5s, 3.0 for 5s -> 2.0.
        assert_eq!(
            s.mean_over(SimTime::from_secs(5), SimTime::from_secs(15)),
            Some(2.0)
        );
        // Degenerate window.
        assert_eq!(s.mean_over(SimTime::from_secs(5), SimTime::from_secs(5)), None);
    }

    #[test]
    fn fraction_where_measures_condition() {
        let s = series();
        let frac = s
            .fraction_where(SimTime::ZERO, SimTime::from_secs(30), |v| v >= 2.0)
            .unwrap();
        // >= 2.0 during [10,30): 20 of 30 seconds.
        assert!((frac - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn resample_fixed_grid() {
        let s = series();
        let xs = s.resample(SimTime::ZERO, SimTime::from_secs(30), SimDuration::from_secs(10));
        assert_eq!(xs, vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn first_where_finds_crossings() {
        let s = series();
        assert_eq!(
            s.first_where(SimTime::ZERO, |v| v > 2.5),
            Some((SimTime::from_secs(10), 3.0))
        );
        // Already true at the query instant.
        assert_eq!(
            s.first_where(SimTime::from_secs(12), |v| v > 2.5),
            Some((SimTime::from_secs(12), 3.0))
        );
        assert_eq!(s.first_where(SimTime::ZERO, |v| v > 10.0), None);
    }

    #[test]
    fn segments_cover_window_with_clamping() {
        let s = series();
        let segs: Vec<_> = s
            .segments_in(SimTime::from_secs(5), SimTime::from_secs(25))
            .collect();
        assert_eq!(
            segs,
            vec![
                (SimTime::from_secs(5), SimTime::from_secs(10), 1.0),
                (SimTime::from_secs(10), SimTime::from_secs(20), 3.0),
                (SimTime::from_secs(20), SimTime::from_secs(25), 2.0),
            ]
        );
        assert!(s
            .segments_in(SimTime::from_secs(5), SimTime::from_secs(25))
            .covers_from());
    }

    #[test]
    fn segments_before_series_start_skip_uncovered_prefix() {
        let s = StepSeries::from_points(vec![
            (SimTime::from_secs(10), 3.0),
            (SimTime::from_secs(20), 2.0),
        ]);
        let it = s.segments_in(SimTime::ZERO, SimTime::from_secs(30));
        assert!(!it.covers_from());
        let segs: Vec<_> = it.collect();
        assert_eq!(
            segs,
            vec![
                (SimTime::from_secs(10), SimTime::from_secs(20), 3.0),
                (SimTime::from_secs(20), SimTime::from_secs(30), 2.0),
            ]
        );
        // Window entirely before the series: nothing.
        let none: Vec<_> = s.segments_in(SimTime::ZERO, SimTime::from_secs(5)).collect();
        assert!(none.is_empty());
        // Empty series: nothing, no coverage.
        let empty = StepSeries::new();
        let it = empty.segments_in(SimTime::ZERO, SimTime::from_secs(5));
        assert!(!it.covers_from());
        assert_eq!(it.count(), 0);
    }

    #[test]
    fn segments_single_point_and_exact_boundaries() {
        let s = StepSeries::from_points(vec![(SimTime::from_secs(10), 4.0)]);
        let segs: Vec<_> = s
            .segments_in(SimTime::from_secs(10), SimTime::from_secs(12))
            .collect();
        assert_eq!(segs, vec![(SimTime::from_secs(10), SimTime::from_secs(12), 4.0)]);
        // A change point exactly at the window end is not entered.
        let s2 = series();
        let segs: Vec<_> = s2.segments_in(SimTime::ZERO, SimTime::from_secs(10)).collect();
        assert_eq!(segs, vec![(SimTime::ZERO, SimTime::from_secs(10), 1.0)]);
    }

    #[test]
    fn resample_before_start_extends_backward() {
        let s = StepSeries::from_points(vec![(SimTime::from_secs(15), 9.0)]);
        let xs = s.resample(SimTime::ZERO, SimTime::from_secs(30), SimDuration::from_secs(10));
        assert_eq!(xs, vec![9.0, 9.0, 9.0]);
        // Degenerate window.
        assert!(s
            .resample(SimTime::from_secs(5), SimTime::from_secs(5), SimDuration::from_secs(1))
            .is_empty());
    }

    #[test]
    fn start_end() {
        let s = series();
        assert_eq!(s.start(), Some(SimTime::ZERO));
        assert_eq!(s.end(), Some(SimTime::from_secs(20)));
    }
}
