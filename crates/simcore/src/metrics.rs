//! Thread-local simulation-event counters.
//!
//! Hot paths (event-queue pops, step-series segment walks, page-write
//! sampling, latency draws, transfer rounds) record how many primitive
//! simulation events they processed. The experiment harness reads the
//! counter around each experiment to report event counts and throughput
//! (`events/sec`) in `BENCH_RESULTS.json`.
//!
//! The counter is *thread-local* so concurrently running experiments never
//! see each other's events. Fork-join helpers ([`crate::parallel`]) fold
//! the counts their workers accumulated back into the spawning thread when
//! they join, so a measurement taken around a parallel region still
//! captures all work done on its behalf.
//!
//! Counting is monotonic within a thread; use [`measure`] (or subtract two
//! [`events`] readings) to attribute a delta to a region of code.

use std::cell::Cell;

thread_local! {
    static EVENTS: Cell<u64> = const { Cell::new(0) };
    static PEAK_QUEUE_DEPTH: Cell<u64> = const { Cell::new(0) };
}

/// Records `n` simulation events on the current thread's counter.
#[inline]
pub fn add(n: u64) {
    EVENTS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Returns the total events recorded on the current thread so far
/// (including counts folded back from joined parallel workers).
pub fn events() -> u64 {
    EVENTS.with(Cell::get)
}

/// Folds an observed event-queue depth into the current thread's peak
/// gauge (a running max, unlike the monotonic event counter). The engine
/// calls this once per dispatched step; fork-join helpers max-fold worker
/// peaks back at join, mirroring the event-count fold.
#[inline]
pub fn note_queue_depth(depth: u64) {
    PEAK_QUEUE_DEPTH.with(|c| {
        if depth > c.get() {
            c.set(depth);
        }
    });
}

/// The largest queue depth noted on this thread since the last
/// [`reset_peak_queue_depth`] (plus peaks folded back from joined
/// parallel workers).
pub fn peak_queue_depth() -> u64 {
    PEAK_QUEUE_DEPTH.with(Cell::get)
}

/// Resets the peak-depth gauge; callers bracket a measurement region with
/// this and [`peak_queue_depth`] (the gauge is a max, so deltas don't
/// compose the way the monotonic event counter does).
pub fn reset_peak_queue_depth() {
    PEAK_QUEUE_DEPTH.with(|c| c.set(0));
}

/// Folds a joined (or barrier-synchronized) worker's counters into the
/// current thread: `events` adds to the monotonic counter,
/// `peak` max-folds into the depth gauge. [`crate::parallel`] calls this
/// at join; [`crate::pool`] calls it at every epoch barrier.
pub fn fold_worker(events: u64, peak: u64) {
    add(events);
    note_queue_depth(peak);
}

/// Runs `f` and returns its result along with the number of simulation
/// events recorded while it ran (on this thread, plus any parallel workers
/// joined inside it).
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = events();
    let out = f();
    (out, events().wrapping_sub(before))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_attributes_a_delta() {
        let (out, n) = measure(|| {
            add(7);
            add(3);
            42
        });
        assert_eq!(out, 42);
        assert_eq!(n, 10);
    }

    #[test]
    fn nested_measures_compose() {
        let (_, outer) = measure(|| {
            add(1);
            let (_, inner) = measure(|| add(5));
            assert_eq!(inner, 5);
            add(1);
        });
        assert_eq!(outer, 7);
    }

    #[test]
    fn threads_have_independent_counters() {
        add(100);
        let child = std::thread::spawn(|| {
            add(1);
            events()
        })
        .join()
        .unwrap();
        assert_eq!(child, 1);
    }

    #[test]
    fn peak_depth_is_a_running_max() {
        reset_peak_queue_depth();
        note_queue_depth(3);
        note_queue_depth(9);
        note_queue_depth(5);
        assert_eq!(peak_queue_depth(), 9);
        reset_peak_queue_depth();
        assert_eq!(peak_queue_depth(), 0);
    }
}
