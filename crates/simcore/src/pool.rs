//! Persistent epoch worker pool with per-slot affinity.
//!
//! [`crate::parallel::parallel_map_indexed`] spawns fresh scoped threads
//! per call — the right trade for the experiment registry, whose items run
//! for seconds each. An epoch-driven simulation is the opposite regime:
//! the sharded engine ([`crate::shard`]) dispatches hundreds of thousands
//! of windows per run, each lasting microseconds to milliseconds, and a
//! per-window `thread::scope` spawn (plus per-item `Mutex<Option<T>>`
//! slots and a fresh result collection) costs more than many windows'
//! event work.
//!
//! [`with_pool`] instead spawns its workers **once**, parks them on a
//! condvar, and hands the caller a [`Pool`] that replays the same
//! fork-join shape with two uncontended lock operations per worker per
//! round:
//!
//! - Every slot lives in its own persistent `Mutex<T>`, allocated once.
//!   Worker `w` owns the **affine** slot set `{w, w + workers, ...}` —
//!   the assignment never changes, so a slot's state stays warm in one
//!   worker's cache and no work item ever moves between threads.
//! - [`Pool::run_epoch`] publishes one job to every worker and blocks
//!   until all affine sets ran it. Slots are mutated **in place**: no
//!   `mem::take`, no result re-collection, no per-round allocation.
//! - Between rounds the coordinator has exclusive access to every slot
//!   ([`Pool::for_each_slot`], [`Pool::slot_mut`]) — the locks are
//!   uncontended by construction because workers only touch slots inside
//!   a round.
//! - Worker-side [`crate::metrics`] counts fold back into the
//!   coordinator's thread at every barrier, so an enclosing
//!   `metrics::measure` attributes the pool's work exactly as it does for
//!   `parallel_map_indexed`.
//!
//! A panic inside a job is captured, the pool shuts down, and the panic
//! resumes on the coordinator — same contract as a scoped spawn.
//!
//! Determinism: the pool never reorders anything observable. Each slot is
//! mutated by exactly one closure invocation per round, and cross-slot
//! communication is the caller's job between rounds — so output is
//! byte-identical at any worker count, exactly like the spawn path it
//! replaces.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::metrics;

/// Coordinator-side barrier state.
struct Ctl {
    /// Rounds dispatched so far; workers chase this counter.
    round: u64,
    /// Workers that have not finished the current round yet.
    remaining: usize,
    /// Set once the driver returns (or a job panicked): workers exit.
    shutdown: bool,
    /// First captured worker panic, re-raised on the coordinator.
    panic: Option<Box<dyn Any + Send>>,
}

/// State shared between the coordinator and the workers.
struct Shared<J> {
    ctl: Mutex<Ctl>,
    /// The job of the current round (valid while `round` covers it).
    job: Mutex<Option<J>>,
    go: Condvar,
    done: Condvar,
    /// Simulation events recorded by workers since the last fold.
    worker_events: AtomicU64,
    /// Max queue depth noted by any worker (running max, never reset).
    worker_peak: AtomicU64,
}

/// Handle the driver closure uses to dispatch rounds and reach slots
/// between rounds.
pub struct Pool<'p, T, J> {
    shared: &'p Shared<J>,
    slots: &'p [Mutex<T>],
    workers: usize,
}

impl<T, J: Copy> Pool<'_, T, J> {
    /// Worker threads parked on the pool (after clamping to the slot
    /// count).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Dispatches `job` to every worker and blocks until every slot ran
    /// it. Worker-side metrics fold into the calling thread before this
    /// returns.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic any job invocation produced.
    pub fn run_epoch(&mut self, job: J) {
        *self.shared.job.lock().expect("pool job slot poisoned") = Some(job);
        let mut ctl = self.shared.ctl.lock().expect("pool control poisoned");
        ctl.round += 1;
        ctl.remaining = self.workers;
        self.shared.go.notify_all();
        while ctl.remaining > 0 && ctl.panic.is_none() {
            ctl = self.shared.done.wait(ctl).expect("pool control poisoned");
        }
        if let Some(payload) = ctl.panic.take() {
            ctl.shutdown = true;
            drop(ctl);
            self.shared.go.notify_all();
            std::panic::resume_unwind(payload);
        }
        drop(ctl);
        metrics::fold_worker(
            self.shared.worker_events.swap(0, Ordering::Relaxed),
            self.shared.worker_peak.load(Ordering::Relaxed),
        );
    }

    /// Visits every slot in index order. Only callable between rounds, so
    /// every lock is uncontended.
    pub fn for_each_slot(&mut self, f: &mut dyn FnMut(usize, &mut T)) {
        for (i, slot) in self.slots.iter().enumerate() {
            f(i, &mut slot.lock().expect("pool slot poisoned"));
        }
    }

    /// Exclusive access to slot `i` between rounds.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn slot_mut(&mut self, i: usize) -> MutexGuard<'_, T> {
        self.slots[i].lock().expect("pool slot poisoned")
    }
}

/// Runs `driver` with a persistent pool of (up to) `workers` threads over
/// `slots`, then returns the slots and the driver's result.
///
/// `job(i, &mut slot, j)` runs once per slot per [`Pool::run_epoch`]
/// round; worker `w` serves the affine slot set `{w, w + workers, ...}`
/// for the pool's whole lifetime. With one (clamped) worker or one slot
/// the pool still works — it just serializes — but callers on a serial
/// path should prefer running inline and skipping the barrier entirely.
pub fn with_pool<T, J, F, D, R>(workers: usize, slots: Vec<T>, job: F, driver: D) -> (Vec<T>, R)
where
    T: Send,
    J: Copy + Send,
    F: Fn(usize, &mut T, J) + Sync,
    D: for<'p> FnOnce(&mut Pool<'p, T, J>) -> R,
{
    let workers = workers.clamp(1, slots.len().max(1));
    let slots: Vec<Mutex<T>> = slots.into_iter().map(Mutex::new).collect();
    let shared = Shared::<J> {
        ctl: Mutex::new(Ctl {
            round: 0,
            remaining: 0,
            shutdown: false,
            panic: None,
        }),
        job: Mutex::new(None),
        go: Condvar::new(),
        done: Condvar::new(),
        worker_events: AtomicU64::new(0),
        worker_peak: AtomicU64::new(0),
    };

    let out = std::thread::scope(|scope| {
        for w in 0..workers {
            let shared = &shared;
            let slots = &slots[..];
            let job = &job;
            scope.spawn(move || {
                let mut seen = 0u64;
                loop {
                    // Park until a new round is dispatched (or shutdown).
                    {
                        let mut ctl = shared.ctl.lock().expect("pool control poisoned");
                        loop {
                            if ctl.shutdown {
                                return;
                            }
                            if ctl.round > seen {
                                seen = ctl.round;
                                break;
                            }
                            ctl = shared.go.wait(ctl).expect("pool control poisoned");
                        }
                    }
                    let this_job = shared
                        .job
                        .lock()
                        .expect("pool job slot poisoned")
                        .expect("dispatched round carries a job");
                    let before = metrics::events();
                    let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut i = w;
                        while i < slots.len() {
                            let mut slot = slots[i].lock().expect("pool slot poisoned");
                            job(i, &mut slot, this_job);
                            i += workers;
                        }
                    }));
                    shared
                        .worker_events
                        .fetch_add(metrics::events().wrapping_sub(before), Ordering::Relaxed);
                    shared
                        .worker_peak
                        .fetch_max(metrics::peak_queue_depth(), Ordering::Relaxed);
                    let mut ctl = shared.ctl.lock().expect("pool control poisoned");
                    match ran {
                        Ok(()) => {
                            ctl.remaining -= 1;
                            if ctl.remaining == 0 {
                                shared.done.notify_one();
                            }
                        }
                        Err(payload) => {
                            // First panic wins; wake the coordinator so it
                            // can re-raise, and stop serving rounds.
                            if ctl.panic.is_none() {
                                ctl.panic = Some(payload);
                            }
                            shared.done.notify_one();
                            return;
                        }
                    }
                }
            });
        }

        let mut pool = Pool {
            shared: &shared,
            slots: &slots,
            workers,
        };
        let out = driver(&mut pool);
        let mut ctl = shared.ctl.lock().expect("pool control poisoned");
        ctl.shutdown = true;
        drop(ctl);
        shared.go.notify_all();
        out
    });

    let slots = slots
        .into_iter()
        .map(|m| m.into_inner().expect("pool slot poisoned"))
        .collect();
    (slots, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_mutate_slots_in_place() {
        let slots: Vec<u64> = vec![0; 10];
        let (slots, rounds) = with_pool(
            4,
            slots,
            |i, slot, add: u64| *slot += add + i as u64,
            |pool| {
                pool.run_epoch(100);
                pool.run_epoch(1000);
                2u64
            },
        );
        assert_eq!(rounds, 2);
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(*s, 1100 + 2 * i as u64);
        }
    }

    #[test]
    fn coordinator_reaches_slots_between_epochs() {
        let (slots, sum) = with_pool(
            3,
            vec![1u64, 2, 3, 4, 5],
            |_, slot, _: ()| *slot *= 2,
            |pool| {
                pool.run_epoch(());
                let mut sum = 0;
                pool.for_each_slot(&mut |_, s| sum += *s);
                *pool.slot_mut(0) += 7;
                pool.run_epoch(());
                sum
            },
        );
        assert_eq!(sum, 30);
        assert_eq!(slots, vec![18, 8, 12, 16, 20]);
    }

    #[test]
    fn worker_metrics_fold_at_every_barrier() {
        let (_, n) = metrics::measure(|| {
            with_pool(
                4,
                (0..16u64).collect::<Vec<_>>(),
                |_, slot, _: ()| metrics::add(*slot),
                |pool| pool.run_epoch(()),
            );
        });
        assert_eq!(n, (0..16u64).sum());
    }

    #[test]
    fn single_worker_and_single_slot_still_run() {
        let (slots, ()) = with_pool(
            8,
            vec![5u64],
            |_, slot, _: ()| *slot += 1,
            |pool| {
                assert_eq!(pool.workers(), 1);
                pool.run_epoch(());
                pool.run_epoch(());
            },
        );
        assert_eq!(slots, vec![7]);
    }

    #[test]
    fn affinity_is_stable_across_rounds() {
        // Each slot records which thread ran it; the set must not change
        // between rounds.
        let slots: Vec<Vec<std::thread::ThreadId>> = vec![Vec::new(); 8];
        let (slots, ()) = with_pool(
            4,
            slots,
            |_, slot: &mut Vec<std::thread::ThreadId>, _: ()| {
                slot.push(std::thread::current().id());
            },
            |pool| {
                for _ in 0..5 {
                    pool.run_epoch(());
                }
            },
        );
        for log in slots {
            assert_eq!(log.len(), 5);
            assert!(log.iter().all(|id| *id == log[0]), "slot changed workers");
        }
    }

    #[test]
    fn job_panic_resumes_on_the_coordinator() {
        let caught = std::panic::catch_unwind(|| {
            with_pool(
                2,
                vec![0u8; 4],
                |i, _, _: ()| {
                    if i == 2 {
                        panic!("boom in slot 2");
                    }
                },
                |pool| pool.run_epoch(()),
            );
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(msg.contains("boom"), "unexpected payload: {msg}");
    }

    #[test]
    fn empty_slot_set_is_a_noop() {
        let (slots, ()) = with_pool(
            4,
            Vec::<u64>::new(),
            |_, _, _: ()| unreachable!("no slots to run"),
            |pool| {
                assert!(pool.is_empty());
                pool.run_epoch(());
            },
        );
        assert!(slots.is_empty());
    }
}
