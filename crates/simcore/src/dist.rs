//! Continuous probability distributions.
//!
//! The approved offline dependency set includes `rand` but not `rand_distr`,
//! so the handful of distributions the reproduction needs are implemented
//! here: exponential, normal, log-normal, Pareto, triangular, empirical
//! (inverse-CDF over samples), and a four-point *quartile-calibrated*
//! distribution used to reproduce the latency table (Table 1 of the paper),
//! which reports only min / median / mean / max per operation.

use crate::rng::SimRng;

/// A continuous distribution over `f64` that can be sampled with a [`SimRng`].
pub trait ContinuousDist {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// Draws `n` samples into a vector.
    fn sample_n(&self, rng: &mut SimRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// The exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "Exponential rate must be finite and positive, got {lambda}"
        );
        Exponential { lambda }
    }

    /// Creates an exponential distribution with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        Exponential::new(1.0 / mean)
    }

    /// Returns the distribution mean.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

impl ContinuousDist for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -rng.next_open_f64().ln() / self.lambda
    }
}

/// The normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with mean `mu` and standard deviation
    /// `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "Normal mean must be finite, got {mu}");
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "Normal sigma must be finite and non-negative, got {sigma}"
        );
        Normal { mu, sigma }
    }
}

impl ContinuousDist for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Marsaglia polar method; statistically equivalent to Box-Muller but
        // avoids trig calls.
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mu + self.sigma * u * factor;
            }
        }
    }
}

/// The log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal with log-space parameters `mu` and `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            normal: Normal::new(mu, sigma),
        }
    }

    /// Creates a log-normal with a target *linear-space* median and a
    /// log-space sigma (a convenient parameterization for latency models:
    /// the median is the headline number, sigma the spread).
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(
            median.is_finite() && median > 0.0,
            "LogNormal median must be positive, got {median}"
        );
        LogNormal::new(median.ln(), sigma)
    }
}

impl ContinuousDist for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// The Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
///
/// Used for heavy-tailed spot-price spike magnitudes: the paper observes
/// hourly price jumps spanning four orders of magnitude (Figure 6b).
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics if `x_min` or `alpha` is not finite and positive.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(
            x_min.is_finite() && x_min > 0.0,
            "Pareto scale must be positive, got {x_min}"
        );
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "Pareto shape must be positive, got {alpha}"
        );
        Pareto { x_min, alpha }
    }
}

impl ContinuousDist for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.x_min / rng.next_open_f64().powf(1.0 / self.alpha)
    }
}

/// The triangular distribution on `[lo, hi]` with mode `mode`.
#[derive(Debug, Clone, Copy)]
pub struct Triangular {
    lo: f64,
    mode: f64,
    hi: f64,
}

impl Triangular {
    /// Creates a triangular distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= mode <= hi` and `lo < hi`.
    pub fn new(lo: f64, mode: f64, hi: f64) -> Self {
        assert!(
            lo < hi && (lo..=hi).contains(&mode),
            "Triangular requires lo < hi and lo <= mode <= hi, got ({lo}, {mode}, {hi})"
        );
        Triangular { lo, mode, hi }
    }
}

impl ContinuousDist for Triangular {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.next_f64();
        let fc = (self.mode - self.lo) / (self.hi - self.lo);
        if u < fc {
            self.lo + ((self.hi - self.lo) * (self.mode - self.lo) * u).sqrt()
        } else {
            self.hi - ((self.hi - self.lo) * (self.hi - self.mode) * (1.0 - u)).sqrt()
        }
    }
}

/// An empirical distribution: inverse-CDF sampling over observed values.
#[derive(Debug, Clone)]
pub struct Empirical {
    sorted: Vec<f64>,
}

impl Empirical {
    /// Creates an empirical distribution from observations.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite entries.
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "Empirical requires at least one value");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "Empirical values must be finite"
        );
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Empirical { sorted: values }
    }
}

impl ContinuousDist for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Linear interpolation between order statistics.
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = rng.next_f64() * (n - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        if i + 1 >= n {
            self.sorted[n - 1]
        } else {
            self.sorted[i] * (1.0 - frac) + self.sorted[i + 1] * frac
        }
    }
}

/// A four-point distribution calibrated to a reported *(min, median, mean,
/// max)* tuple.
///
/// The paper's Table 1 characterizes each EC2 control-plane operation by
/// exactly these four statistics over 20 measurements. This distribution has
/// a piecewise inverse CDF: linear from `(0, min)` to `(0.5, median)`, and a
/// power-warped segment from `(0.5, median)` to `(1, max)` whose exponent
/// `gamma` is solved so the overall mean matches the reported mean. Sampling
/// therefore reproduces all four reported statistics (min/max exactly in the
/// limit, median exactly, mean in expectation).
#[derive(Debug, Clone, Copy)]
pub struct QuartileCalibrated {
    min: f64,
    median: f64,
    max: f64,
    gamma: f64,
}

impl QuartileCalibrated {
    /// Smallest admissible warp exponent (guards against degenerate means).
    const GAMMA_MIN: f64 = 0.05;
    /// Largest admissible warp exponent.
    const GAMMA_MAX: f64 = 64.0;

    /// Calibrates the distribution to the reported statistics.
    ///
    /// The reported mean is matched when it is achievable given the other
    /// three statistics; otherwise `gamma` is clamped and the mean lands as
    /// close as the family allows.
    ///
    /// # Panics
    ///
    /// Panics unless `min <= median <= max` and `min < max`.
    pub fn new(min: f64, median: f64, mean: f64, max: f64) -> Self {
        assert!(
            min <= median && median <= max && min < max,
            "QuartileCalibrated requires min <= median <= max and min < max, \
             got ({min}, {median}, {mean}, {max})"
        );
        // Mean of the lower (linear) half contributes 0.5 * (min+median)/2.
        // The upper half contributes 0.5 * (median + (max-median)/(gamma+1)).
        // Solve mean = 0.25*(min+median) + 0.5*median + 0.5*(max-median)/(g+1).
        let target_upper = 2.0 * (mean - 0.25 * (min + median) - 0.5 * median);
        let gamma = if target_upper > 0.0 {
            ((max - median) / target_upper - 1.0).clamp(Self::GAMMA_MIN, Self::GAMMA_MAX)
        } else {
            Self::GAMMA_MAX
        };
        QuartileCalibrated {
            min,
            median,
            max,
            gamma,
        }
    }

    /// Returns the mean this calibration actually realizes.
    pub fn realized_mean(&self) -> f64 {
        0.25 * (self.min + self.median)
            + 0.5 * self.median
            + 0.5 * (self.max - self.median) / (self.gamma + 1.0)
    }
}

impl ContinuousDist for QuartileCalibrated {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.next_f64();
        if u < 0.5 {
            self.min + (self.median - self.min) * (u / 0.5)
        } else {
            let v = (u - 0.5) / 0.5;
            self.median + (self.max - self.median) * v.powf(self.gamma)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: &impl ContinuousDist, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::seed(seed);
        d.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(4.0);
        let m = mean_of(&d, 1, 200_000);
        assert!((m - 4.0).abs() < 0.05, "mean={m}");
        assert!((d.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(2.0);
        let mut rng = SimRng::seed(2);
        assert!(d.sample_n(&mut rng, 10_000).iter().all(|&x| x > 0.0));
    }

    #[test]
    fn normal_moments_match() {
        let d = Normal::new(10.0, 3.0);
        let mut rng = SimRng::seed(3);
        let xs = d.sample_n(&mut rng, 200_000);
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((m - 10.0).abs() < 0.05, "mean={m}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "sd={}", var.sqrt());
    }

    #[test]
    fn lognormal_median_matches() {
        let d = LogNormal::with_median(50.0, 0.5);
        let mut rng = SimRng::seed(4);
        let mut xs = d.sample_n(&mut rng, 100_001);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 50.0).abs() / 50.0 < 0.03, "median={median}");
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let d = Pareto::new(2.0, 1.5);
        let mut rng = SimRng::seed(5);
        let xs = d.sample_n(&mut rng, 50_000);
        assert!(xs.iter().all(|&x| x >= 2.0));
        // A heavy tail: some samples should exceed 10x the scale.
        assert!(xs.iter().any(|&x| x > 20.0));
    }

    #[test]
    fn triangular_stays_in_support_and_centers() {
        let d = Triangular::new(1.0, 3.0, 5.0);
        let mut rng = SimRng::seed(6);
        let xs = d.sample_n(&mut rng, 100_000);
        assert!(xs.iter().all(|&x| (1.0..=5.0).contains(&x)));
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((m - 3.0).abs() < 0.02, "mean={m}");
    }

    #[test]
    fn empirical_interpolates_between_observations() {
        let d = Empirical::new(vec![3.0, 1.0, 2.0]);
        let mut rng = SimRng::seed(7);
        let xs = d.sample_n(&mut rng, 10_000);
        assert!(xs.iter().all(|&x| (1.0..=3.0).contains(&x)));
    }

    #[test]
    fn empirical_single_value_is_constant() {
        let d = Empirical::new(vec![42.0]);
        let mut rng = SimRng::seed(8);
        assert!(d.sample_n(&mut rng, 100).iter().all(|&x| x == 42.0));
    }

    /// Calibration against the paper's Table 1 rows: the sampled statistics
    /// must land near the published min/median/mean/max.
    #[test]
    fn quartile_calibrated_reproduces_table1_rows() {
        // (label, min, median, mean, max) from Table 1 of the paper.
        let rows = [
            ("start-spot", 100.0, 227.0, 224.0, 409.0),
            ("start-ondemand", 47.0, 61.0, 62.0, 86.0),
            ("terminate", 133.0, 135.0, 136.0, 147.0),
            ("detach-ebs", 9.6, 10.3, 10.3, 11.3),
            ("attach-ebs", 4.4, 5.0, 5.1, 9.3),
            ("attach-nic", 1.0, 3.0, 3.75, 14.0),
            ("detach-nic", 1.0, 2.0, 3.5, 12.0),
        ];
        for (i, (label, min, median, mean, max)) in rows.iter().enumerate() {
            let d = QuartileCalibrated::new(*min, *median, *mean, *max);
            let mut rng = SimRng::seed(100 + i as u64);
            let mut xs = d.sample_n(&mut rng, 200_001);
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let med = xs[xs.len() / 2];
            assert!(
                (m - mean).abs() / mean < 0.02,
                "{label}: sampled mean {m} vs reported {mean}"
            );
            assert!(
                (med - median).abs() / median < 0.02,
                "{label}: sampled median {med} vs reported {median}"
            );
            assert!(xs[0] >= *min && xs[xs.len() - 1] <= *max, "{label}: support");
        }
    }

    #[test]
    fn quartile_calibrated_realized_mean_is_consistent() {
        let d = QuartileCalibrated::new(100.0, 227.0, 224.0, 409.0);
        let m = mean_of(&d, 9, 300_000);
        assert!((m - d.realized_mean()).abs() < 0.5, "{m} vs {}", d.realized_mean());
    }

    #[test]
    #[should_panic(expected = "QuartileCalibrated requires")]
    fn quartile_calibrated_rejects_inverted_stats() {
        let _ = QuartileCalibrated::new(10.0, 5.0, 7.0, 20.0);
    }
}
