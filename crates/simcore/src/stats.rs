//! Statistics utilities used across the reproduction.
//!
//! Includes sample summaries (the min/median/mean/max shape of the paper's
//! Table 1), empirical CDFs (Figure 6a/6b), Pearson correlation (Figure
//! 6c/6d), time-weighted accumulators (availability and degradation
//! percentages in Figures 11/12), and simple histograms.

use crate::time::{SimDuration, SimTime};

/// A growable collection of `f64` samples with summary statistics.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Creates a sample set from existing values.
    ///
    /// # Panics
    ///
    /// Panics if any value is non-finite.
    pub fn from_values(values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| v.is_finite()),
            "Samples must be finite"
        );
        Samples {
            values,
            sorted: false,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is non-finite; NaNs would silently poison every
    /// downstream statistic.
    pub fn push(&mut self, value: f64) {
        assert!(value.is_finite(), "Samples::push: non-finite value {value}");
        self.values.push(value);
        self.sorted = false;
    }

    /// Returns the number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if there are no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns the raw observations in insertion order (unless a quantile
    /// query has sorted them).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Returns the sample mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Returns the population standard deviation, or `None` if empty.
    pub fn stddev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .values
            .iter()
            .map(|v| (v - mean).powi(2))
            .sum::<f64>()
            / self.values.len() as f64;
        Some(var.sqrt())
    }

    /// Returns the minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Returns the maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
            self.sorted = true;
        }
    }

    /// Returns the `p`-quantile (0 <= p <= 1) by linear interpolation, or
    /// `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "quantile p must be in [0,1]");
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.values.len();
        if n == 1 {
            return Some(self.values[0]);
        }
        let pos = p * (n - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        Some(if i + 1 >= n {
            self.values[n - 1]
        } else {
            self.values[i] * (1.0 - frac) + self.values[i + 1] * frac
        })
    }

    /// Returns the median, or `None` if empty.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Returns the `(min, median, mean, max)` tuple that Table 1 of the
    /// paper reports per operation, or `None` if empty.
    pub fn table1_row(&mut self) -> Option<(f64, f64, f64, f64)> {
        Some((
            self.min()?,
            self.median()?,
            self.mean()?,
            self.max()?,
        ))
    }
}

/// An empirical cumulative distribution function.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from observations.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite entries.
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "Ecdf requires at least one value");
        assert!(values.iter().all(|v| v.is_finite()), "Ecdf values finite");
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ecdf { sorted: values }
    }

    /// Returns `P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the number of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Returns the `p`-quantile (inverse CDF) for `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p must be in [0,1]");
        let n = self.sorted.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Returns the number of underlying observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns false; an ECDF is never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluates the CDF at each of `points`, returning `(x, F(x))` pairs —
    /// the series format the figure benches print.
    pub fn curve(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.eval(x))).collect()
    }
}

/// Returns the Pearson correlation coefficient of two equal-length series.
///
/// Returns `None` if the series are shorter than 2 points, have mismatched
/// lengths, or either has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

/// A time-weighted accumulator over a piecewise-constant signal.
///
/// Feed it `(time, value)` transitions in nondecreasing time order; it
/// integrates value x time. Used for time-average cost ($/hr of a pool whose
/// price steps) and for availability (value 0/1 = down/up).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    integral: f64, // value x seconds
    elapsed: SimDuration,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Creates an accumulator with no signal yet.
    pub fn new() -> Self {
        TimeWeighted {
            last_time: SimTime::ZERO,
            last_value: 0.0,
            integral: 0.0,
            elapsed: SimDuration::ZERO,
            started: false,
        }
    }

    /// Records that the signal takes `value` from instant `t` onward.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous transition.
    pub fn set(&mut self, t: SimTime, value: f64) {
        if self.started {
            let dt = t.since(self.last_time);
            self.integral += self.last_value * dt.as_secs_f64();
            self.elapsed += dt;
        }
        self.last_time = t;
        self.last_value = value;
        self.started = true;
    }

    /// Closes the signal at instant `t` and leaves the accumulator ready for
    /// further transitions.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous transition.
    pub fn finish(&mut self, t: SimTime) {
        let v = self.last_value;
        self.set(t, v);
    }

    /// Returns the integral of the signal in value x seconds.
    pub fn integral_value_secs(&self) -> f64 {
        self.integral
    }

    /// Returns total signal duration observed.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Returns the time-average of the signal, or `None` if no time has
    /// elapsed.
    pub fn time_average(&self) -> Option<f64> {
        if self.elapsed.is_zero() {
            None
        } else {
            Some(self.integral / self.elapsed.as_secs_f64())
        }
    }

    /// Returns the integral of the signal through instant `t` without
    /// closing the accumulator (a read-only peek equivalent to
    /// [`TimeWeighted::finish`] at `t` followed by
    /// [`TimeWeighted::integral_value_secs`]).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous transition.
    pub fn integral_value_secs_at(&self, t: SimTime) -> f64 {
        if !self.started {
            return self.integral;
        }
        self.integral + self.last_value * t.since(self.last_time).as_secs_f64()
    }

    /// Returns the total signal duration through instant `t` without
    /// closing the accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous transition.
    pub fn elapsed_at(&self, t: SimTime) -> SimDuration {
        if !self.started {
            return self.elapsed;
        }
        self.elapsed + t.since(self.last_time)
    }

    /// Returns the time-average of the signal through instant `t` without
    /// closing the accumulator, or `None` if no time has elapsed.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous transition.
    pub fn time_average_at(&self, t: SimTime) -> Option<f64> {
        let elapsed = self.elapsed_at(t);
        if elapsed.is_zero() {
            None
        } else {
            Some(self.integral_value_secs_at(t) / elapsed.as_secs_f64())
        }
    }
}

/// Tracks the fraction of time a boolean condition holds.
///
/// This is the paper's availability metric: availability = 1 - fraction of
/// time the nested VM is down; the degradation metric in Figure 12 is the
/// fraction of time perf-degraded.
#[derive(Debug, Clone, Default)]
pub struct ConditionClock {
    inner: TimeWeighted,
}

impl ConditionClock {
    /// Creates a clock with the condition initially false at time zero.
    pub fn new() -> Self {
        Self::starting_at(SimTime::ZERO)
    }

    /// Creates a clock with the condition initially false at `start` (no
    /// time before `start` is counted).
    pub fn starting_at(start: SimTime) -> Self {
        let mut inner = TimeWeighted::new();
        inner.set(start, 0.0);
        ConditionClock { inner }
    }

    /// Records that the condition is `on` from instant `t` onward.
    pub fn set(&mut self, t: SimTime, on: bool) {
        self.inner.set(t, if on { 1.0 } else { 0.0 });
    }

    /// Closes the signal at `t`.
    pub fn finish(&mut self, t: SimTime) {
        self.inner.finish(t);
    }

    /// Returns the total time the condition held.
    pub fn total_on(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.inner.integral_value_secs())
    }

    /// Returns the fraction of observed time the condition held, or `None`
    /// if no time has elapsed.
    pub fn fraction_on(&self) -> Option<f64> {
        self.inner.time_average()
    }

    /// Returns the total time the condition held through instant `t`
    /// without closing the clock (read-only peek).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous transition.
    pub fn total_on_at(&self, t: SimTime) -> SimDuration {
        SimDuration::from_secs_f64(self.inner.integral_value_secs_at(t))
    }

    /// Returns the fraction of time through instant `t` the condition
    /// held, without closing the clock, or `None` if no time has elapsed.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous transition.
    pub fn fraction_on_at(&self, t: SimTime) -> Option<f64> {
        self.inner.time_average_at(t)
    }
}

/// A fixed-width linear histogram over `[lo, hi)` with saturating edge bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "Histogram requires lo < hi");
        assert!(bins > 0, "Histogram requires at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Records one observation; out-of-range values clamp to the edge bins.
    pub fn record(&mut self, value: f64) {
        let n = self.bins.len();
        let idx = if value < self.lo {
            0
        } else if value >= self.hi {
            n - 1
        } else {
            let frac = (value - self.lo) / (self.hi - self.lo);
            ((frac * n as f64) as usize).min(n - 1)
        };
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Returns the bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Returns the total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns `(bin_center, fraction)` pairs.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let n = self.bins.len();
        let width = (self.hi - self.lo) / n as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + (i as f64 + 0.5) * width;
                let frac = if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                };
                (center, frac)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_summary_statistics() {
        let mut s = Samples::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.median(), Some(2.5));
        let (min, med, mean, max) = s.table1_row().unwrap();
        assert_eq!((min, med, mean, max), (1.0, 2.5, 2.5, 4.0));
    }

    #[test]
    fn samples_quantiles_interpolate() {
        let mut s = Samples::from_values(vec![0.0, 10.0]);
        assert_eq!(s.quantile(0.25), Some(2.5));
        assert_eq!(s.quantile(0.0), Some(0.0));
        assert_eq!(s.quantile(1.0), Some(10.0));
    }

    #[test]
    fn samples_empty_returns_none() {
        let mut s = Samples::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.median(), None);
        assert_eq!(s.table1_row(), None);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn samples_reject_nan() {
        Samples::new().push(f64::NAN);
    }

    #[test]
    fn samples_stddev() {
        let s = Samples::from_values(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.stddev().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.quantile(0.5), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn ecdf_curve_is_monotone() {
        let e = Ecdf::new(vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let pts: Vec<f64> = (0..=100).map(|i| i as f64 / 10.0).collect();
        let curve = e.curve(&pts);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be nondecreasing");
        }
    }

    #[test]
    fn pearson_basic_cases() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&xs, &flat), None);
        assert_eq!(pearson(&xs, &[1.0]), None);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::from_secs(0), 10.0);
        tw.set(SimTime::from_secs(10), 20.0);
        tw.finish(SimTime::from_secs(20));
        // 10 for 10s, 20 for 10s -> average 15.
        assert_eq!(tw.time_average(), Some(15.0));
        assert_eq!(tw.elapsed(), SimDuration::from_secs(20));
    }

    #[test]
    fn time_weighted_empty_is_none() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.time_average(), None);
    }

    #[test]
    fn condition_clock_fraction() {
        let mut c = ConditionClock::new();
        c.set(SimTime::from_secs(10), true);
        c.set(SimTime::from_secs(15), false);
        c.finish(SimTime::from_secs(100));
        // On for 5s of 100s.
        assert!((c.fraction_on().unwrap() - 0.05).abs() < 1e-9);
        assert_eq!(c.total_on(), SimDuration::from_secs(5));
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-5.0); // clamps to first bin
        h.record(0.5);
        h.record(9.5);
        h.record(100.0); // clamps to last bin
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[9], 2);
        assert_eq!(h.total(), 4);
        let norm = h.normalized();
        assert!((norm[0].1 - 0.5).abs() < 1e-12);
        assert!((norm[0].0 - 0.5).abs() < 1e-12);
    }
}
