//! Deterministic random-number generation.
//!
//! Every stochastic component of the reproduction takes an explicit seed, so
//! runs are bit-for-bit reproducible. [`SimRng`] is a self-contained
//! splitmix64-seeded xoshiro256** generator: no external RNG crate, so the
//! stream can never shift under a dependency upgrade.
//!
//! [`SimRng::fork`] derives statistically independent child streams from a
//! parent, so each simulated market, server, or workload can own its own
//! stream and adding one component never perturbs the draws of another.

/// Advances a splitmix64 state and returns the next output.
///
/// Splitmix64 is the standard seed-expansion function for xoshiro-family
/// generators (Blackman & Vigna).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable, forkable RNG (xoshiro256**).
///
/// # Examples
///
/// ```
/// use spotcheck_simcore::rng::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.gen_range(0, 1000), b.gen_range(0, 1000));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // xoshiro256** requires a nonzero state; splitmix64 output over four
        // words is zero with negligible probability, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1234_5678_9ABC_DEF0;
        }
        SimRng { s }
    }

    /// The generator's current internal state words (for state digests and
    /// snapshot signatures; the state cannot be set back directly — replay
    /// reconstructs it by re-deriving the same draw sequence).
    pub fn state_words(&self) -> [u64; 4] {
        self.s
    }

    /// Derives an independent child stream identified by `stream`.
    ///
    /// Forking with distinct stream ids yields decorrelated generators;
    /// forking twice with the same id yields identical generators. The parent
    /// is not advanced.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the parent's state with the stream id through splitmix64 so
        // that child streams differ even for adjacent ids.
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let _ = splitmix64(&mut sm);
        SimRng::seed(splitmix64(&mut sm))
    }

    /// Derives an independent child stream from a string label.
    ///
    /// Convenient for naming streams after components ("market:m3.medium",
    /// "backup:7") without manually allocating ids.
    pub fn fork_named(&self, label: &str) -> SimRng {
        // FNV-1a over the label bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.fork(h)
    }

    /// Returns the next 64-bit output (xoshiro256** core step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output (the high bits of [`SimRng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Returns a uniformly distributed integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire): rejection keeps the draw exactly
        // uniform even when `span` does not divide 2^64.
        let zone = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= zone {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed `f64` in the open interval `(0, 1)`.
    ///
    /// Useful for inverse-CDF sampling of distributions whose transform is
    /// singular at 0 (e.g. the exponential's `-ln(u)`).
    pub fn next_open_f64(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Returns a standard normal deviate (Marsaglia polar method).
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * ((-2.0 * s.ln() / s).sqrt());
            }
        }
    }

    /// Samples `Binomial(n, p)` using a constant number of uniform draws
    /// (amortized), rather than `n` Bernoulli trials.
    ///
    /// Small-mean regime: single-uniform CDF inversion (`O(np)` arithmetic,
    /// one draw). Large-mean regime: normal approximation with continuity
    /// correction, rounded and clamped to `[0, n]` — the callers batching
    /// page-write sampling care about the count's first two moments, not
    /// exact tail probabilities.
    ///
    /// `p` is clamped to `[0, 1]`.
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        let p = p.clamp(0.0, 1.0);
        if n == 0 || p == 0.0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        // Invert the smaller tail for numerical stability and shorter
        // inversion walks.
        if p > 0.5 {
            return n - self.binomial(n, 1.0 - p);
        }
        let nf = n as f64;
        let mean = nf * p;
        if mean <= 64.0 {
            // CDF inversion: pmf(0) = (1-p)^n is representable because
            // n*ln(1-p) >= -mean/(1-p) >= -128 here.
            let q = 1.0 - p;
            let mut pmf = q.powf(nf);
            let mut cdf = pmf;
            let mut k = 0u64;
            let u = self.next_f64();
            while u > cdf && k < n {
                pmf *= ((n - k) as f64 / (k + 1) as f64) * (p / q);
                k += 1;
                cdf += pmf;
                if pmf <= f64::MIN_POSITIVE && cdf >= 1.0 - 1e-12 {
                    break;
                }
            }
            k
        } else {
            let sd = (mean * (1.0 - p)).sqrt();
            let x = mean + sd * self.next_gaussian() + 0.5;
            (x.max(0.0) as u64).min(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let parent = SimRng::seed(99);
        let mut c1 = parent.fork(0);
        let mut c1_again = parent.fork(0);
        let mut c2 = parent.fork(1);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        // Adjacent stream ids should still decorrelate.
        let mut matches = 0;
        for _ in 0..64 {
            if c1.next_u64() == c2.next_u64() {
                matches += 1;
            }
        }
        assert_eq!(matches, 0);
    }

    #[test]
    fn fork_named_matches_itself() {
        let parent = SimRng::seed(5);
        let mut a = parent.fork_named("market:m3.medium");
        let mut b = parent.fork_named("market:m3.medium");
        let mut c = parent.fork_named("market:m3.large");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed(3);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn next_f64_is_roughly_uniform() {
        let mut rng = SimRng::seed(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::seed(13);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_ends() {
        let mut rng = SimRng::seed(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(10, 20);
            assert!((10..20).contains(&x));
            seen_lo |= x == 10;
            seen_hi |= x == 19;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn binomial_matches_moments_small_and_large_mean() {
        let mut rng = SimRng::seed(31);
        for (n, p) in [(100u64, 0.02), (50_000, 0.02), (1_000_000, 0.3), (40, 0.9)] {
            let trials = 2_000;
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for _ in 0..trials {
                let k = rng.binomial(n, p) as f64;
                assert!(k <= n as f64);
                sum += k;
                sum_sq += k * k;
            }
            let mean = sum / trials as f64;
            let var = sum_sq / trials as f64 - mean * mean;
            let (em, ev) = (n as f64 * p, n as f64 * p * (1.0 - p));
            assert!((mean - em).abs() < 4.0 * (ev / trials as f64).sqrt() + 1.0,
                "n={n} p={p}: mean {mean} vs {em}");
            assert!(var > 0.5 * ev && var < 1.6 * ev, "n={n} p={p}: var {var} vs {ev}");
        }
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SimRng::seed(1);
        assert_eq!(rng.binomial(0, 0.5), 0);
        assert_eq!(rng.binomial(10, 0.0), 0);
        assert_eq!(rng.binomial(10, 1.0), 10);
        assert_eq!(rng.binomial(10, -0.5), 0);
        assert_eq!(rng.binomial(10, 2.0), 10);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SimRng::seed(21);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac={frac}");
    }
}
