//! # spotcheck-migrate
//!
//! The migration mechanisms of SpotCheck (paper §3), implemented as
//! page-level algorithms over the nested-VM memory model and the fluid
//! bandwidth substrate:
//!
//! - [`precopy`] — pre-copy live migration (Clark et al.), used whenever
//!   there is no deadline;
//! - [`bounded`] — Yank-style bounded-time migration via continuous
//!   checkpointing, plus SpotCheck's ramped-final-checkpoint optimization;
//! - [`restore`] — stop-and-copy and lazy restoration, with the
//!   fadvise-optimized read paths of §5;
//! - [`scenario`] — steady-state checkpoint contention on a backup server
//!   (the Figure 7 experiment);
//! - [`mechanisms`] — the named mechanism variants of Figures 8/10/11/12
//!   and their per-migration impact;
//! - [`planner`] — mechanism selection per §3.5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod mechanisms;
pub mod planner;
pub mod precopy;
pub mod restore;
pub mod scenario;

pub use bounded::{simulate_final_commit, BoundedTimeConfig, FinalCommitOutcome, RampPolicy};
pub use mechanisms::{migration_impact, MechanismKind, MigrationImpact};
pub use planner::{Mechanism, MigrationTrigger, Planner};
pub use precopy::{simulate_precopy, PreCopyConfig, PreCopyOutcome};
pub use restore::{simulate_concurrent_restores, ReadPath, RestoreMode, RestoreOutcome};
pub use scenario::{checkpoint_contention, CheckpointContention};
