//! Migration-mechanism selection (paper §3.5, "Putting it all together").
//!
//! - A nested VM on an **on-demand** server always live-migrates: there is
//!   no deadline, so no backup server is assigned.
//! - A nested VM on a **spot** server needs bounded-time migration — and
//!   hence a backup server — *unless* it is small enough that a pre-copy
//!   live migration reliably completes within the platform's warning
//!   period.
//! - **Proactive** migrations (triggered by price monitoring before any
//!   warning, available under k>1 bidding) use live migration regardless.

use spotcheck_nestedvm::memory::DirtyModel;
use spotcheck_nestedvm::vm::NestedVmSpec;
use spotcheck_simcore::time::SimDuration;

use crate::precopy::{simulate_precopy, PreCopyConfig};

/// The mechanism chosen for a migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Pre-copy live migration (near-zero downtime, unbounded latency).
    Live,
    /// Continuous checkpointing + bounded-time migration + restore.
    BoundedTime,
}

/// Why the VM is moving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationTrigger {
    /// The platform issued a revocation warning: hard deadline.
    RevocationWarning,
    /// Price monitoring predicts trouble, or a cheaper pool appeared: no
    /// hard deadline.
    Proactive,
    /// Moving back to spot after a spike abated: no hard deadline.
    ReturnToSpot,
}

/// Decides mechanisms and protection requirements.
#[derive(Debug, Clone)]
pub struct Planner {
    /// The platform's revocation warning period (EC2: 120 s).
    pub warning: SimDuration,
    /// Bandwidth a migration can count on, bytes/sec.
    pub bandwidth_bps: f64,
    /// Safety factor applied to the warning when judging live-migratability
    /// (the paper chooses bounds "conservatively").
    pub safety_factor: f64,
}

impl Default for Planner {
    fn default() -> Self {
        Planner {
            warning: SimDuration::from_secs(120),
            bandwidth_bps: 125e6,
            safety_factor: 0.75,
        }
    }
}

impl Planner {
    /// True if `spec` under `dirty` load reliably live-migrates within the
    /// (safety-discounted) warning period.
    pub fn live_fits_in_warning(&self, spec: &NestedVmSpec, dirty: &DirtyModel) -> bool {
        let out = simulate_precopy(
            spec.mem_bytes,
            dirty,
            &PreCopyConfig {
                bandwidth_bps: self.bandwidth_bps,
                ..PreCopyConfig::default()
            },
        );
        out.converged
            && out.total_duration.as_secs_f64()
                <= self.warning.as_secs_f64() * self.safety_factor
    }

    /// Whether a VM placed on a *spot* server needs a backup server
    /// (paper §3.5: small VMs that can live-migrate within the warning
    /// period skip the backup).
    pub fn needs_backup_on_spot(&self, spec: &NestedVmSpec, dirty: &DirtyModel) -> bool {
        !self.live_fits_in_warning(spec, dirty)
    }

    /// Chooses the mechanism for a migration.
    pub fn choose(
        &self,
        spec: &NestedVmSpec,
        dirty: &DirtyModel,
        trigger: MigrationTrigger,
        on_spot: bool,
    ) -> Mechanism {
        match trigger {
            MigrationTrigger::Proactive | MigrationTrigger::ReturnToSpot => Mechanism::Live,
            MigrationTrigger::RevocationWarning => {
                if !on_spot {
                    // On-demand servers are never revoked; a "warning"
                    // cannot occur, but a caller asking anyway gets the
                    // unconstrained answer.
                    Mechanism::Live
                } else if self.live_fits_in_warning(spec, dirty) {
                    Mechanism::Live
                } else {
                    Mechanism::BoundedTime
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn light() -> DirtyModel {
        DirtyModel::new(50_000, 700.0, 0.01)
    }

    #[test]
    fn small_vm_live_migrates_on_revocation() {
        let planner = Planner::default();
        let small = NestedVmSpec::with_mem_bytes(1 << 30);
        assert!(planner.live_fits_in_warning(&small, &light()));
        assert_eq!(
            planner.choose(&small, &light(), MigrationTrigger::RevocationWarning, true),
            Mechanism::Live
        );
        assert!(!planner.needs_backup_on_spot(&small, &light()));
    }

    #[test]
    fn large_vm_needs_bounded_time() {
        let planner = Planner::default();
        // 16 GiB: single pass alone takes ~137 s > 0.75 * 120 s.
        let big = NestedVmSpec::with_mem_bytes(16 << 30);
        assert_eq!(
            planner.choose(&big, &light(), MigrationTrigger::RevocationWarning, true),
            Mechanism::BoundedTime
        );
        assert!(planner.needs_backup_on_spot(&big, &light()));
    }

    #[test]
    fn default_medium_vm_needs_backup() {
        // The paper's experiments protect every (3 GiB) medium nested VM
        // with a backup server; with the conservative safety factor and a
        // shared NIC the planner agrees.
        let planner = Planner {
            bandwidth_bps: 30e6, // NIC share while several VMs co-reside
            ..Planner::default()
        };
        let medium = NestedVmSpec::medium();
        assert!(planner.needs_backup_on_spot(&medium, &light()));
    }

    #[test]
    fn proactive_and_return_migrations_are_live() {
        let planner = Planner::default();
        let big = NestedVmSpec::with_mem_bytes(16 << 30);
        assert_eq!(
            planner.choose(&big, &light(), MigrationTrigger::Proactive, true),
            Mechanism::Live
        );
        assert_eq!(
            planner.choose(&big, &light(), MigrationTrigger::ReturnToSpot, false),
            Mechanism::Live
        );
    }

    #[test]
    fn heavy_writer_cannot_live_migrate() {
        let planner = Planner::default();
        let small = NestedVmSpec::with_mem_bytes(1 << 30);
        // Distinct-dirty production near link speed: no convergence.
        let heavy = DirtyModel::new(2_000_000, 50_000.0, 0.0);
        assert_eq!(
            planner.choose(&small, &heavy, MigrationTrigger::RevocationWarning, true),
            Mechanism::BoundedTime
        );
    }
}
