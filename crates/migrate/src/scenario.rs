//! Steady-state contention scenarios on a backup server.
//!
//! Figure 7 of the paper measures nested-VM performance as the number of
//! VMs continuously checkpointing to one backup server grows: flat until
//! the server's ingest path saturates (around 35-40 VMs), then degrading.
//! This module computes the per-VM achieved checkpoint rates under max-min
//! fair sharing of the backup's NIC-receive and disk-write channels; the
//! workload models translate the achieved/demanded ratio into response
//! time or throughput.

use spotcheck_backup::server::BackupServerConfig;
use spotcheck_simcore::fluid::{max_min_rates, FlowSpec, Network};

/// Result of a steady-state checkpoint-contention computation.
#[derive(Debug, Clone)]
pub struct CheckpointContention {
    /// Achieved stream rate per VM, bytes/sec (input order).
    pub achieved_bps: Vec<f64>,
    /// `achieved / demand` per VM, clamped to `[0, 1]`. Below 1.0 the
    /// checkpointer back-pressures the workload.
    pub health: Vec<f64>,
    /// Fraction of the NIC-receive capacity in use.
    pub nic_utilization: f64,
    /// Fraction of the disk-write capacity in use.
    pub disk_utilization: f64,
}

/// Computes steady-state checkpoint-stream contention for VMs with the
/// given per-stream demands (bytes/sec) sharing one backup server.
///
/// Each stream is capped at its own demand (a checkpointer never sends
/// faster than dirty pages are produced) and optionally at `per_vm_cap_bps`
/// (the `tc` throttle).
pub fn checkpoint_contention(
    demands_bps: &[f64],
    cfg: &BackupServerConfig,
    per_vm_cap_bps: Option<f64>,
) -> CheckpointContention {
    let mut net = Network::new();
    let nic_rx = net.add_link(cfg.nic_bps);
    let disk_w = net.add_link(cfg.disk_write_bps);
    let flows: Vec<FlowSpec> = demands_bps
        .iter()
        .map(|&d| {
            let cap = per_vm_cap_bps.map_or(d, |c| c.min(d));
            FlowSpec::new(vec![nic_rx, disk_w], f64::INFINITY).with_cap(cap.max(1.0))
        })
        .collect();
    // One contention event per competing checkpoint stream.
    spotcheck_simcore::metrics::add(demands_bps.len() as u64);
    let achieved = max_min_rates(&net, &flows);
    let health: Vec<f64> = achieved
        .iter()
        .zip(demands_bps)
        .map(|(&a, &d)| if d <= 0.0 { 1.0 } else { (a / d).clamp(0.0, 1.0) })
        .collect();
    let total: f64 = achieved.iter().sum();
    CheckpointContention {
        nic_utilization: total / cfg.nic_bps,
        disk_utilization: total / cfg.disk_write_bps,
        achieved_bps: achieved,
        health,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BackupServerConfig {
        BackupServerConfig::default()
    }

    #[test]
    fn below_knee_all_streams_healthy() {
        // 30 VMs at 3.2 MB/s = 96 MB/s < 125 MB/s NIC: everyone at demand.
        let demands = vec![3.2e6; 30];
        let c = checkpoint_contention(&demands, &cfg(), None);
        assert!(c.health.iter().all(|&h| (h - 1.0).abs() < 1e-9));
        assert!(c.nic_utilization < 1.0);
    }

    #[test]
    fn past_knee_streams_degrade() {
        // 50 VMs at 3.2 MB/s = 160 MB/s > 125 MB/s NIC.
        let demands = vec![3.2e6; 50];
        let c = checkpoint_contention(&demands, &cfg(), None);
        let h = c.health[0];
        assert!(h < 1.0, "health={h}");
        assert!((h - 125e6 / 160e6).abs() < 0.01, "health={h}");
        assert!((c.nic_utilization - 1.0).abs() < 1e-6);
    }

    #[test]
    fn knee_is_between_35_and_45_vms_for_typical_demand() {
        // The Figure 7 calibration target: degradation sets in past ~35-40.
        let mut knee = None;
        for n in 1..=60usize {
            let demands = vec![3.2e6; n];
            let c = checkpoint_contention(&demands, &cfg(), None);
            if c.health[0] < 0.999 {
                knee = Some(n);
                break;
            }
        }
        let knee = knee.expect("saturation must occur by 60 VMs");
        assert!((36..=45).contains(&knee), "knee at {knee} VMs");
    }

    #[test]
    fn heterogeneous_demands_share_fairly() {
        // One heavy stream among light ones: the light ones stay healthy;
        // the heavy one takes the slack.
        let mut demands = vec![1.0e6; 40];
        demands.push(100.0e6);
        let c = checkpoint_contention(&demands, &cfg(), None);
        for h in &c.health[..40] {
            assert!((h - 1.0).abs() < 1e-9);
        }
        // 125 - 40 = 85 MB/s left for the heavy stream's 100 MB/s demand.
        assert!((c.achieved_bps[40] - 85e6).abs() < 1e3);
    }

    #[test]
    fn throttle_caps_streams() {
        let demands = vec![10.0e6; 4];
        let c = checkpoint_contention(&demands, &cfg(), Some(2.0e6));
        for a in &c.achieved_bps {
            assert!((a - 2.0e6).abs() < 1.0);
        }
        for h in &c.health {
            assert!((h - 0.2).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_demand_is_healthy() {
        let c = checkpoint_contention(&[0.0], &cfg(), None);
        assert_eq!(c.health[0], 1.0);
    }
}
