//! VM restoration from a backup server: stop-and-copy vs. lazy.
//!
//! After a bounded-time migration commits a VM's memory image to its backup
//! server, the VM must be *restored* on the destination host:
//!
//! - **Full (stop-and-copy) restore** reads the whole image before resuming
//!   — downtime proportional to image size (and to contention when many
//!   VMs restore concurrently; Figure 8a).
//! - **Lazy restore** reads only the ~5 MB skeleton (vCPU + page tables),
//!   resumes immediately (<0.1 s), and then serves page faults on demand
//!   while a background process prefetches the rest — near-zero downtime
//!   but a window of degraded performance whose length is the time to pull
//!   the image across (Figure 8b).
//!
//! SpotCheck's backup-server optimizations (`fadvise` hints matched to the
//! access pattern, image preloading) raise the effective read bandwidth in
//! both modes; the *unoptimized* variants model Yank's behavior.

use spotcheck_backup::server::BackupServerConfig;
use spotcheck_simcore::fluid::{FlowSpec, FluidSim, Network};
use spotcheck_simcore::time::SimDuration;

/// Restore mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreMode {
    /// Read the whole image before resuming (downtime = read time).
    Full,
    /// Resume from the skeleton; demand-page + background prefetch
    /// (downtime ~ skeleton read; degradation = read time).
    Lazy,
}

/// Whether SpotCheck's backup read-path optimizations are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPath {
    /// Yank-style: no fadvise hints, no preloading.
    Unoptimized,
    /// SpotCheck: fadvise(WILLNEED + RANDOM/SEQUENTIAL), preloading.
    Optimized,
}

/// Per-VM result of a (possibly concurrent) restore.
#[derive(Debug, Clone)]
pub struct RestoreOutcome {
    /// Application-visible downtime.
    pub downtime: SimDuration,
    /// Window of degraded performance after resume (zero for full
    /// restores, which pay everything as downtime).
    pub degraded: SimDuration,
    /// Bytes read from the backup server for this VM.
    pub bytes_read: u64,
}

/// Effective disk-read capacity for a restore mode/path on `cfg`.
///
/// Full restores stream images sequentially; without the write-back and
/// preloading optimizations, seek interference among concurrent streams
/// halves the achievable rate. Lazy restores read in page-fault order —
/// effectively random — where the fadvise hints matter enormously
/// (Figure 8's contrast).
pub fn disk_read_capacity(cfg: &BackupServerConfig, mode: RestoreMode, path: ReadPath) -> f64 {
    match (mode, path) {
        (RestoreMode::Full, ReadPath::Optimized) => cfg.disk_read_seq_bps,
        (RestoreMode::Full, ReadPath::Unoptimized) => cfg.disk_read_seq_bps * 0.5,
        (RestoreMode::Lazy, ReadPath::Optimized) => cfg.disk_read_rand_fadvise_bps,
        (RestoreMode::Lazy, ReadPath::Unoptimized) => cfg.disk_read_rand_bps,
    }
}

/// Simulates `n` VMs of `image_bytes` each restoring concurrently from one
/// backup server, returning per-VM outcomes in completion order.
///
/// The VMs share the backup's disk-read channel and NIC transmit side via
/// max-min fair sharing; per-VM rate caps (the `tc` throttling of §5) are
/// applied when `per_vm_cap_bps` is set.
pub fn simulate_concurrent_restores(
    n: usize,
    image_bytes: u64,
    skeleton_bytes: u64,
    mode: RestoreMode,
    path: ReadPath,
    cfg: &BackupServerConfig,
    per_vm_cap_bps: Option<f64>,
) -> Vec<RestoreOutcome> {
    assert!(n > 0, "at least one VM must restore");
    let mut net = Network::new();
    let disk = net.add_link(disk_read_capacity(cfg, mode, path));
    let nic = net.add_link(cfg.nic_bps);

    // Phase 1: skeletons (lazy mode only pays this as downtime; full mode
    // reads the skeleton as part of the image, so skip it there).
    let skeleton_downtime = if mode == RestoreMode::Lazy {
        let mut sim = FluidSim::new(net.clone());
        for _ in 0..n {
            let mut f = FlowSpec::new(vec![disk, nic], skeleton_bytes as f64);
            if let Some(cap) = per_vm_cap_bps {
                f = f.with_cap(cap);
            }
            sim.add_flow(f);
        }
        sim.drain_completions()
            .last()
            .map(|(t, _)| t.since(spotcheck_simcore::time::SimTime::ZERO))
            .unwrap_or(SimDuration::ZERO)
    } else {
        SimDuration::ZERO
    };

    // Phase 2: the images.
    let mut sim = FluidSim::new(net);
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let mut f = FlowSpec::new(vec![disk, nic], image_bytes as f64);
        if let Some(cap) = per_vm_cap_bps {
            f = f.with_cap(cap);
        }
        ids.push(sim.add_flow(f));
    }
    let mut completion = vec![SimDuration::ZERO; n];
    for (t, done) in sim.drain_completions() {
        let idx = ids.iter().position(|f| *f == done).expect("known flow");
        completion[idx] = t.since(spotcheck_simcore::time::SimTime::ZERO);
    }

    completion
        .into_iter()
        .map(|image_time| match mode {
            RestoreMode::Full => RestoreOutcome {
                downtime: image_time,
                degraded: SimDuration::ZERO,
                bytes_read: image_bytes,
            },
            RestoreMode::Lazy => RestoreOutcome {
                downtime: skeleton_downtime,
                degraded: image_time,
                bytes_read: image_bytes + skeleton_bytes,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;
    const SKELETON: u64 = 5 << 20;

    fn cfg() -> BackupServerConfig {
        BackupServerConfig::default()
    }

    #[test]
    fn single_full_restore_downtime_is_read_time() {
        let out = simulate_concurrent_restores(
            1,
            4 * GIB,
            SKELETON,
            RestoreMode::Full,
            ReadPath::Optimized,
            &cfg(),
            None,
        );
        assert_eq!(out.len(), 1);
        // 4 GiB over min(seq disk 180, nic 125) = 125 MB/s: ~34 s.
        let d = out[0].downtime.as_secs_f64();
        assert!((d - 4.0 * GIB as f64 / 125e6).abs() < 0.5, "downtime={d}");
        assert!(out[0].degraded.is_zero());
    }

    #[test]
    fn lazy_restore_has_subsecond_downtime() {
        let out = simulate_concurrent_restores(
            1,
            4 * GIB,
            SKELETON,
            RestoreMode::Lazy,
            ReadPath::Optimized,
            &cfg(),
            None,
        );
        // Skeleton (~5 MB) at >100 MB/s: well under 0.1 s (paper §5:
        // "drastically reduce restoration time, e.g., to <0.1 seconds").
        assert!(
            out[0].downtime.as_secs_f64() < 0.1,
            "downtime={}",
            out[0].downtime
        );
        assert!(out[0].degraded.as_secs_f64() > 10.0);
    }

    #[test]
    fn unoptimized_lazy_restore_is_much_slower() {
        // The Figure 8b contrast: random reads without fadvise crawl.
        let unopt = simulate_concurrent_restores(
            10,
            4 * GIB,
            SKELETON,
            RestoreMode::Lazy,
            ReadPath::Unoptimized,
            &cfg(),
            None,
        );
        let opt = simulate_concurrent_restores(
            10,
            4 * GIB,
            SKELETON,
            RestoreMode::Lazy,
            ReadPath::Optimized,
            &cfg(),
            None,
        );
        let u = unopt[9].degraded.as_secs_f64();
        let o = opt[9].degraded.as_secs_f64();
        assert!(u > 3.0 * o, "unopt {u} vs opt {o}");
        // 10 x 4 GiB at 35 MB/s: ~1227 s, the paper's ~1000-1200 s regime.
        assert!((1000.0..1400.0).contains(&u), "unopt={u}");
    }

    #[test]
    fn concurrency_scales_restore_times() {
        let one = simulate_concurrent_restores(
            1,
            4 * GIB,
            SKELETON,
            RestoreMode::Full,
            ReadPath::Unoptimized,
            &cfg(),
            None,
        );
        let ten = simulate_concurrent_restores(
            10,
            4 * GIB,
            SKELETON,
            RestoreMode::Full,
            ReadPath::Unoptimized,
            &cfg(),
            None,
        );
        let ratio = ten[9].downtime.as_secs_f64() / one[0].downtime.as_secs_f64();
        assert!((9.0..11.0).contains(&ratio), "ratio={ratio}");
        // Figure 8a regime: 10 concurrent unoptimized full restores take
        // hundreds of seconds.
        let d = ten[9].downtime.as_secs_f64();
        assert!((400.0..600.0).contains(&d), "downtime={d}");
    }

    #[test]
    fn per_vm_cap_equalizes_but_slows() {
        let capped = simulate_concurrent_restores(
            5,
            GIB,
            SKELETON,
            RestoreMode::Lazy,
            ReadPath::Optimized,
            &cfg(),
            Some(10e6),
        );
        // All five finish at the same capped time: 1 GiB / 10 MB/s.
        for o in &capped {
            assert!(
                (o.degraded.as_secs_f64() - GIB as f64 / 10e6).abs() < 1.0,
                "degraded={}",
                o.degraded
            );
        }
    }

    #[test]
    fn full_restore_unopt_vs_opt_matches_figure8a_shape() {
        for n in [1usize, 5, 10] {
            let unopt = simulate_concurrent_restores(
                n, 4 * GIB, SKELETON, RestoreMode::Full, ReadPath::Unoptimized, &cfg(), None,
            );
            let opt = simulate_concurrent_restores(
                n, 4 * GIB, SKELETON, RestoreMode::Full, ReadPath::Optimized, &cfg(), None,
            );
            assert!(
                unopt[n - 1].downtime > opt[n - 1].downtime,
                "n={n}: optimized must be faster"
            );
        }
    }
}
