//! The mechanism variants compared throughout the paper's evaluation.
//!
//! Figures 10-12 sweep five pool policies against four mechanism variants;
//! Figure 8 contrasts the unoptimized and optimized restore paths. This
//! module names the variants and computes each one's *per-migration
//! impact* — mechanism downtime and post-resume degradation — given how
//! many VMs are migrating concurrently through the same backup server.
//!
//! EC2 control-plane downtime (EBS/ENI detach-attach, ~22.65 s mean) is
//! *not* included here; the policy simulator adds it for every non-live
//! migration, exactly as the paper seeds its simulation from Table 1.

use spotcheck_backup::server::BackupServerConfig;
use spotcheck_nestedvm::memory::DirtyModel;
use spotcheck_simcore::time::SimDuration;

use crate::bounded::{simulate_final_commit, BoundedTimeConfig, RampPolicy};
use crate::restore::{simulate_concurrent_restores, ReadPath, RestoreMode};

/// The mechanism variants of the paper's evaluation (§6 lists five; the
/// figures plot four, with "unoptimized lazy" appearing in Figure 8b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MechanismKind {
    /// Xen pre-copy live migration only — impractical (risks losing state
    /// on revocation) but the availability/cost ideal.
    XenLive,
    /// Unoptimized bounded-time migration with full restore (Yank).
    UnoptimizedFull,
    /// SpotCheck's optimized bounded-time migration with full restore.
    SpotCheckFull,
    /// Unoptimized bounded-time migration with lazy restore.
    UnoptimizedLazy,
    /// SpotCheck's optimized bounded-time migration with lazy restore —
    /// the headline configuration.
    SpotCheckLazy,
}

impl MechanismKind {
    /// The four variants plotted in Figures 10-12, in bar order.
    pub const FIGURE_GRID: [MechanismKind; 4] = [
        MechanismKind::XenLive,
        MechanismKind::UnoptimizedFull,
        MechanismKind::SpotCheckFull,
        MechanismKind::SpotCheckLazy,
    ];

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            MechanismKind::XenLive => "Xen Live migration",
            MechanismKind::UnoptimizedFull => "Unoptimized Full restore",
            MechanismKind::SpotCheckFull => "SpotCheck with Full restore",
            MechanismKind::UnoptimizedLazy => "Unoptimized Lazy restore",
            MechanismKind::SpotCheckLazy => "SpotCheck with Lazy restore",
        }
    }

    /// Whether this variant protects VMs with backup servers (all bounded
    /// variants do; pure live migration does not — which is why it is
    /// cheaper but unsafe).
    pub fn needs_backup(self) -> bool {
        !matches!(self, MechanismKind::XenLive)
    }

    /// Whether the EC2 control-plane operations (EBS/ENI moves) interrupt
    /// the VM for this variant. Live migration keeps the VM running on the
    /// source until the switchover, which the paper idealizes as
    /// zero-downtime.
    pub fn pays_cloud_op_downtime(self) -> bool {
        self.needs_backup()
    }

    /// The restore configuration of this variant, if it restores at all.
    pub fn restore(self) -> Option<(RestoreMode, ReadPath)> {
        match self {
            MechanismKind::XenLive => None,
            MechanismKind::UnoptimizedFull => Some((RestoreMode::Full, ReadPath::Unoptimized)),
            MechanismKind::SpotCheckFull => Some((RestoreMode::Full, ReadPath::Optimized)),
            MechanismKind::UnoptimizedLazy => Some((RestoreMode::Lazy, ReadPath::Unoptimized)),
            MechanismKind::SpotCheckLazy => Some((RestoreMode::Lazy, ReadPath::Optimized)),
        }
    }

    /// The final-commit ramp this variant runs on a warning.
    pub fn ramp(self) -> RampPolicy {
        match self {
            MechanismKind::XenLive => RampPolicy::None, // unused
            MechanismKind::UnoptimizedFull | MechanismKind::UnoptimizedLazy => RampPolicy::None,
            MechanismKind::SpotCheckFull | MechanismKind::SpotCheckLazy => {
                RampPolicy::spotcheck_default()
            }
        }
    }
}

/// Per-migration impact of a mechanism variant.
#[derive(Debug, Clone, Copy)]
pub struct MigrationImpact {
    /// Mechanism downtime (final-commit pause + restore downtime).
    pub downtime: SimDuration,
    /// Post-resume degraded-performance window (lazy restores only).
    pub degraded: SimDuration,
}

/// Computes the per-VM impact of `concurrent` simultaneous revocation
/// migrations of identical VMs through one backup server.
///
/// `image_bytes`/`skeleton_bytes` describe the VM; `dirty` its workload;
/// `stale_bytes` the dirty residue at warning time (at most the
/// bounded-time budget); `commit_bps` the per-VM bandwidth available for
/// the final commit during the warning.
#[allow(clippy::too_many_arguments)]
pub fn migration_impact(
    kind: MechanismKind,
    concurrent: usize,
    image_bytes: u64,
    skeleton_bytes: u64,
    dirty: &DirtyModel,
    stale_bytes: f64,
    commit_bps: f64,
    backup_cfg: &BackupServerConfig,
    bt_cfg: &BoundedTimeConfig,
) -> MigrationImpact {
    let concurrent = concurrent.max(1);
    if kind == MechanismKind::XenLive {
        // Idealized as in the paper's Figure 11 accounting.
        return MigrationImpact {
            downtime: SimDuration::ZERO,
            degraded: SimDuration::ZERO,
        };
    }
    let total_pages = (image_bytes / spotcheck_nestedvm::memory::PAGE_SIZE) as usize;
    let commit = simulate_final_commit(
        stale_bytes,
        dirty,
        total_pages,
        commit_bps,
        &BoundedTimeConfig {
            ramp: kind.ramp(),
            ..bt_cfg.clone()
        },
    );
    let (mode, path) = kind.restore().expect("non-live variants restore");
    let restores = simulate_concurrent_restores(
        concurrent,
        image_bytes,
        skeleton_bytes,
        mode,
        path,
        backup_cfg,
        None,
    );
    // Identical VMs finish together; take the slowest (they all equal it).
    let worst = restores
        .iter()
        .max_by_key(|o| o.downtime.max(o.degraded))
        .expect("at least one restore");
    MigrationImpact {
        downtime: commit.downtime + worst.downtime,
        degraded: worst.degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    fn impact(kind: MechanismKind, concurrent: usize) -> MigrationImpact {
        migration_impact(
            kind,
            concurrent,
            3 * GIB,
            5 << 20,
            &DirtyModel::new(50_000, 700.0, 0.01),
            64e6,
            32e6,
            &BackupServerConfig::default(),
            &BoundedTimeConfig::default(),
        )
    }

    #[test]
    fn live_is_free_by_construction() {
        let i = impact(MechanismKind::XenLive, 10);
        assert!(i.downtime.is_zero());
        assert!(i.degraded.is_zero());
        assert!(!MechanismKind::XenLive.needs_backup());
        assert!(!MechanismKind::XenLive.pays_cloud_op_downtime());
    }

    #[test]
    fn downtime_ordering_matches_figure11() {
        // Unavailability ordering in Figure 11:
        // XenLive < SpotCheckLazy < SpotCheckFull < UnoptimizedFull.
        let live = impact(MechanismKind::XenLive, 1);
        let lazy = impact(MechanismKind::SpotCheckLazy, 1);
        let full = impact(MechanismKind::SpotCheckFull, 1);
        let yank = impact(MechanismKind::UnoptimizedFull, 1);
        assert!(live.downtime < lazy.downtime);
        assert!(lazy.downtime < full.downtime, "{} vs {}", lazy.downtime, full.downtime);
        assert!(full.downtime < yank.downtime, "{} vs {}", full.downtime, yank.downtime);
    }

    #[test]
    fn lazy_trades_downtime_for_degradation() {
        // Figure 12's counterpoint: lazy restore has the most degradation
        // despite the least downtime.
        let lazy = impact(MechanismKind::SpotCheckLazy, 1);
        let full = impact(MechanismKind::SpotCheckFull, 1);
        assert!(lazy.downtime.as_secs_f64() < 1.0, "lazy downtime {}", lazy.downtime);
        assert!(lazy.degraded > full.degraded);
        assert!(full.degraded.is_zero());
    }

    #[test]
    fn concurrency_amplifies_impact() {
        let one = impact(MechanismKind::SpotCheckFull, 1);
        let ten = impact(MechanismKind::SpotCheckFull, 10);
        assert!(ten.downtime.as_secs_f64() > 5.0 * one.downtime.as_secs_f64());
    }

    #[test]
    fn grid_and_labels_are_stable() {
        assert_eq!(MechanismKind::FIGURE_GRID.len(), 4);
        assert_eq!(MechanismKind::XenLive.label(), "Xen Live migration");
        assert_eq!(
            MechanismKind::SpotCheckLazy.label(),
            "SpotCheck with Lazy restore"
        );
        assert!(MechanismKind::SpotCheckLazy.needs_backup());
        assert_eq!(
            MechanismKind::UnoptimizedLazy.restore(),
            Some((RestoreMode::Lazy, ReadPath::Unoptimized))
        );
        assert_eq!(MechanismKind::UnoptimizedFull.ramp(), RampPolicy::None);
    }
}
