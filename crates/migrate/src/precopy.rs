//! Pre-copy live migration (Clark et al., NSDI'05), applied to nested VMs.
//!
//! Round 0 pushes the whole memory image while the VM keeps running; each
//! subsequent round pushes the pages dirtied during the previous round.
//! When the residual dirty set is small enough (or rounds are exhausted),
//! the VM pauses for a brief stop-and-copy of the remainder — the downtime.
//! SpotCheck uses this mechanism whenever there is no deadline, e.g. when
//! moving a nested VM from an on-demand server back to a newly-cheap spot
//! server (paper §3.2).

use spotcheck_nestedvm::memory::{DirtyModel, PAGE_SIZE};
use spotcheck_simcore::time::SimDuration;

/// Parameters of a pre-copy migration.
#[derive(Debug, Clone)]
pub struct PreCopyConfig {
    /// Transfer bandwidth available to the migration, bytes/sec.
    pub bandwidth_bps: f64,
    /// Stop-and-copy when the residual dirty set is at most this many
    /// bytes (Xen's default is ~50 pages plus heuristics).
    pub stop_threshold_bytes: u64,
    /// Maximum number of pre-copy rounds before forcing the stop-and-copy
    /// (Xen's default: ~30).
    pub max_rounds: u32,
}

impl Default for PreCopyConfig {
    fn default() -> Self {
        PreCopyConfig {
            bandwidth_bps: 125e6,
            stop_threshold_bytes: 50 * PAGE_SIZE,
            max_rounds: 30,
        }
    }
}

/// Outcome of a simulated pre-copy migration.
#[derive(Debug, Clone)]
pub struct PreCopyOutcome {
    /// Wall-clock duration from start to the VM running on the destination.
    pub total_duration: SimDuration,
    /// The stop-and-copy pause visible to the application.
    pub downtime: SimDuration,
    /// Total bytes pushed (all rounds plus the final copy).
    pub bytes_transferred: u64,
    /// Pre-copy rounds executed (excluding the final stop-and-copy).
    pub rounds: u32,
    /// True if the dirty set shrank below the threshold; false if the
    /// migration hit `max_rounds` and force-stopped (workload dirties
    /// faster than the link drains).
    pub converged: bool,
}

/// Simulates a pre-copy live migration of a VM with `mem_bytes` of memory
/// under `dirty` load.
///
/// The simulation is deterministic: dirty-page production uses the
/// expected-value working-set model.
///
/// # Panics
///
/// Panics if the bandwidth is not finite and positive.
pub fn simulate_precopy(mem_bytes: u64, dirty: &DirtyModel, cfg: &PreCopyConfig) -> PreCopyOutcome {
    assert!(
        cfg.bandwidth_bps.is_finite() && cfg.bandwidth_bps > 0.0,
        "pre-copy bandwidth must be positive"
    );
    let bw = cfg.bandwidth_bps;
    let mut total_secs = 0.0f64;
    let mut bytes_transferred = 0u64;
    let mut rounds = 0u32;
    let mut converged = false;

    // Round 0: the full image.
    let mut to_send = mem_bytes as f64;
    loop {
        let round_secs = to_send / bw;
        total_secs += round_secs;
        bytes_transferred += to_send as u64;
        rounds += 1;
        // Pages dirtied while this round was in flight become the next
        // round's payload. The dirty set was conceptually drained at the
        // start of the round (pages are re-sent if re-dirtied).
        let new_dirty_pages = dirty.expected_new_hot_dirty(0, SimDuration::from_secs_f64(round_secs))
            + dirty.expected_new_cold_dirty(
                (mem_bytes / PAGE_SIZE) as usize,
                0,
                SimDuration::from_secs_f64(round_secs),
            );
        let next = new_dirty_pages * PAGE_SIZE as f64;
        if next <= cfg.stop_threshold_bytes as f64 {
            to_send = next;
            converged = true;
            break;
        }
        if rounds >= cfg.max_rounds {
            to_send = next;
            break;
        }
        // Divergence guard: if rounds stop shrinking, further pre-copy is
        // wasted effort; stop-and-copy now.
        if next >= to_send {
            to_send = next;
            break;
        }
        to_send = next;
    }

    // Final stop-and-copy of the residue.
    let downtime_secs = to_send / bw;
    total_secs += downtime_secs;
    bytes_transferred += to_send as u64;

    PreCopyOutcome {
        total_duration: SimDuration::from_secs_f64(total_secs),
        downtime: SimDuration::from_secs_f64(downtime_secs),
        bytes_transferred,
        rounds,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    fn light_load() -> DirtyModel {
        // ~700 distinct pages/s on a 50k-page hot set: ~2.9 MB/s.
        DirtyModel::new(50_000, 700.0, 0.01)
    }

    #[test]
    fn idle_vm_migrates_in_one_round_with_tiny_downtime() {
        let out = simulate_precopy(GIB, &DirtyModel::idle(), &PreCopyConfig::default());
        assert!(out.converged);
        assert_eq!(out.rounds, 1);
        // 1 GiB at 125 MB/s: ~8.6 s.
        let total = out.total_duration.as_secs_f64();
        assert!((total - GIB as f64 / 125e6).abs() < 0.1, "total={total}");
        assert!(out.downtime.is_zero());
    }

    #[test]
    fn light_load_converges_with_subsecond_downtime() {
        let out = simulate_precopy(2 * GIB, &light_load(), &PreCopyConfig::default());
        assert!(out.converged, "rounds={}", out.rounds);
        assert!(out.rounds > 1);
        assert!(
            out.downtime.as_secs_f64() < 1.0,
            "downtime={}",
            out.downtime
        );
        // Total latency is proportional to memory size (paper §3.2): at
        // least the single-pass time, with bounded overhead.
        let single_pass = 2.0 * GIB as f64 / 125e6;
        let total = out.total_duration.as_secs_f64();
        assert!(total >= single_pass && total < 3.0 * single_pass, "total={total}");
    }

    #[test]
    fn latency_scales_with_memory_size() {
        let small = simulate_precopy(GIB, &light_load(), &PreCopyConfig::default());
        let big = simulate_precopy(8 * GIB, &light_load(), &PreCopyConfig::default());
        let ratio =
            big.total_duration.as_secs_f64() / small.total_duration.as_secs_f64();
        assert!((6.0..10.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn heavy_writer_fails_to_converge() {
        // Dirty production (~200 MB/s over a huge hot set) exceeds the
        // 125 MB/s link: pre-copy cannot converge and force-stops.
        let heavy = DirtyModel::new(2_000_000, 50_000.0, 0.0);
        let out = simulate_precopy(8 * GIB, &heavy, &PreCopyConfig::default());
        assert!(!out.converged);
        // The forced stop-and-copy is large: substantial downtime.
        assert!(out.downtime.as_secs_f64() > 5.0, "downtime={}", out.downtime);
    }

    #[test]
    fn faster_link_means_less_downtime_for_same_load() {
        let slow = simulate_precopy(
            2 * GIB,
            &light_load(),
            &PreCopyConfig {
                bandwidth_bps: 50e6,
                ..PreCopyConfig::default()
            },
        );
        let fast = simulate_precopy(
            2 * GIB,
            &light_load(),
            &PreCopyConfig {
                bandwidth_bps: 500e6,
                ..PreCopyConfig::default()
            },
        );
        assert!(fast.total_duration < slow.total_duration);
        assert!(fast.downtime <= slow.downtime);
    }

    #[test]
    fn bytes_transferred_at_least_memory_size() {
        let out = simulate_precopy(GIB, &light_load(), &PreCopyConfig::default());
        assert!(out.bytes_transferred >= GIB);
    }
}
