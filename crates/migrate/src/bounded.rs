//! Bounded-time VM migration (Yank, NSDI'13), with SpotCheck's
//! ramped-final-checkpoint optimization.
//!
//! During normal operation on a spot server, a background process
//! continuously flushes dirty pages to the VM's backup server, keeping the
//! dirty residue small enough that it can always be committed within the
//! time bound (30 s in the paper's experiments, chosen conservatively below
//! EC2's 120 s warning). On a revocation warning:
//!
//! - **Yank** pauses the VM and transfers the stale residue in one go —
//!   downtime proportional to the residue.
//! - **SpotCheck** instead *increases the checkpoint frequency* through the
//!   warning period, geometrically shrinking the residue while the VM keeps
//!   running, and pauses only for the last tiny epoch — trading a little
//!   degraded performance during the warning for much less downtime (§5).

use spotcheck_nestedvm::memory::{DirtyModel, PAGE_SIZE};
use spotcheck_simcore::time::SimDuration;

/// Final-commit strategy on a revocation warning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RampPolicy {
    /// Yank: one pause-and-flush of the whole stale residue.
    None,
    /// SpotCheck: successive checkpoints with epochs shrunk by `factor`
    /// each iteration, down to `min_epoch`, then pause for the remainder.
    Geometric {
        /// Epoch shrink factor per iteration, in `(0, 1)`.
        factor: f64,
        /// Smallest epoch before the final pause.
        min_epoch: SimDuration,
    },
}

impl RampPolicy {
    /// SpotCheck's default ramp.
    pub fn spotcheck_default() -> Self {
        RampPolicy::Geometric {
            factor: 0.5,
            min_epoch: SimDuration::from_millis(250),
        }
    }
}

/// Configuration of the continuous checkpointer.
#[derive(Debug, Clone)]
pub struct BoundedTimeConfig {
    /// The migration-time guarantee (paper experiments: 30 s).
    pub bound: SimDuration,
    /// Bandwidth the checkpointer can count on toward its backup server,
    /// bytes/sec (per-VM `tc` throttle or fair share).
    pub reserve_bps: f64,
    /// Final-commit strategy.
    pub ramp: RampPolicy,
}

impl Default for BoundedTimeConfig {
    fn default() -> Self {
        BoundedTimeConfig {
            bound: SimDuration::from_secs(30),
            reserve_bps: 3.2e6,
            ramp: RampPolicy::spotcheck_default(),
        }
    }
}

impl BoundedTimeConfig {
    /// The largest dirty residue (bytes) the bound permits: anything at or
    /// below this can be committed within `bound` at `reserve_bps`.
    pub fn residue_budget_bytes(&self) -> f64 {
        self.reserve_bps * self.bound.as_secs_f64()
    }

    /// Chooses the steady-state checkpoint epoch: the longest epoch whose
    /// expected distinct-dirty production stays within the residue budget
    /// (longer epochs cost less overhead; the budget caps them).
    ///
    /// Returns an epoch in `[100 ms, bound]`.
    pub fn steady_epoch(&self, dirty: &DirtyModel, total_pages: usize) -> SimDuration {
        let budget_pages = self.residue_budget_bytes() / PAGE_SIZE as f64;
        // Binary search the largest epoch with expected dirty <= budget.
        let mut lo = 0.1f64;
        let mut hi = self.bound.as_secs_f64();
        let dirty_at = |secs: f64| {
            let dt = SimDuration::from_secs_f64(secs);
            dirty.expected_new_hot_dirty(0, dt)
                + dirty.expected_new_cold_dirty(
                    total_pages.saturating_sub(dirty.hot_pages),
                    0,
                    dt,
                )
        };
        if dirty_at(hi) <= budget_pages {
            return self.bound;
        }
        if dirty_at(lo) > budget_pages {
            return SimDuration::from_secs_f64(lo);
        }
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if dirty_at(mid) <= budget_pages {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        SimDuration::from_secs_f64(lo)
    }

    /// The steady-state checkpoint stream rate (bytes/sec) this VM imposes
    /// on its backup server.
    pub fn steady_stream_bps(&self, dirty: &DirtyModel, total_pages: usize) -> f64 {
        let epoch = self.steady_epoch(dirty, total_pages);
        dirty.distinct_dirty_rate(total_pages, epoch) * PAGE_SIZE as f64
    }
}

/// Outcome of the final commit after a revocation warning.
#[derive(Debug, Clone)]
pub struct FinalCommitOutcome {
    /// Application-visible pause while the last residue flushes.
    pub downtime: SimDuration,
    /// Time from warning receipt to the checkpoint being fully committed.
    pub commit_duration: SimDuration,
    /// Checkpoint iterations run during the warning (1 for Yank).
    pub checkpoints: u32,
    /// Bytes transferred during the warning period.
    pub bytes_transferred: u64,
    /// True if the commit fit within the configured bound.
    pub within_bound: bool,
}

/// Simulates the final commit triggered by a revocation warning, starting
/// from `stale_bytes` of not-yet-committed dirty state.
///
/// `bandwidth_bps` is the bandwidth actually available during the warning
/// (typically more than the steady-state reserve, since the warning relaxes
/// the throttle).
pub fn simulate_final_commit(
    stale_bytes: f64,
    dirty: &DirtyModel,
    total_pages: usize,
    bandwidth_bps: f64,
    cfg: &BoundedTimeConfig,
) -> FinalCommitOutcome {
    assert!(
        bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
        "final-commit bandwidth must be positive"
    );
    let cold_pages = total_pages.saturating_sub(dirty.hot_pages);
    let bound_secs = cfg.bound.as_secs_f64();
    match cfg.ramp {
        RampPolicy::None => {
            // Yank: pause, flush everything (one checkpoint event).
            spotcheck_simcore::metrics::add(1);
            let secs = stale_bytes / bandwidth_bps;
            FinalCommitOutcome {
                downtime: SimDuration::from_secs_f64(secs),
                commit_duration: SimDuration::from_secs_f64(secs),
                checkpoints: 1,
                bytes_transferred: stale_bytes as u64,
                within_bound: secs <= bound_secs,
            }
        }
        RampPolicy::Geometric { factor, min_epoch } => {
            assert!(
                (0.0..1.0).contains(&factor),
                "ramp factor must be in (0,1), got {factor}"
            );
            // Iterative checkpoints while running: each transfer of the
            // current residue takes residue/bw; during it the VM dirties
            // more. Epochs shrink geometrically via the *transfer* itself
            // (smaller residue -> shorter epoch), the policy's min_epoch
            // bounding the tail. Stop when the projected pause is below
            // min_epoch's worth of production or the bound is nearly spent.
            let mut residue = stale_bytes;
            let mut elapsed = 0.0f64;
            let mut transferred = 0.0f64;
            let mut checkpoints = 0u32;
            let min_epoch_secs = min_epoch.as_secs_f64();
            loop {
                let transfer_secs = residue / bandwidth_bps;
                // The pause this residue would cost if we stopped now.
                if transfer_secs <= min_epoch_secs || checkpoints >= 30 {
                    break;
                }
                // Budget check: leave room for the final pause.
                if elapsed + transfer_secs >= bound_secs * 0.9 {
                    break;
                }
                // Project the residue after one concurrent epoch; if the
                // write rate saturates the link, the residue would *grow*
                // while burning the warning window — pause now instead
                // (degenerating to Yank's behavior).
                let dt = SimDuration::from_secs_f64(transfer_secs.max(min_epoch_secs * factor));
                let new_pages = dirty.expected_new_hot_dirty(0, dt)
                    + dirty.expected_new_cold_dirty(cold_pages, 0, dt);
                let new_residue = new_pages * PAGE_SIZE as f64;
                if new_residue >= residue {
                    break;
                }
                // Commit the epoch.
                elapsed += transfer_secs;
                transferred += residue;
                checkpoints += 1;
                residue = new_residue;
            }
            // Final pause: flush the remaining residue.
            let pause = residue / bandwidth_bps;
            elapsed += pause;
            transferred += residue;
            checkpoints += 1;
            spotcheck_simcore::metrics::add(checkpoints as u64);
            FinalCommitOutcome {
                downtime: SimDuration::from_secs_f64(pause),
                commit_duration: SimDuration::from_secs_f64(elapsed),
                checkpoints,
                bytes_transferred: transferred as u64,
                within_bound: elapsed <= bound_secs,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpcw_like() -> DirtyModel {
        // ~700 distinct pages/s, 50k hot pages (~200 MB WSS): ~2.9 MB/s.
        DirtyModel::new(50_000, 700.0, 0.01)
    }

    const TOTAL_PAGES: usize = 786_432; // 3 GiB

    #[test]
    fn residue_budget_is_bound_times_reserve() {
        let cfg = BoundedTimeConfig::default();
        assert!((cfg.residue_budget_bytes() - 96e6).abs() < 1.0);
    }

    #[test]
    fn steady_epoch_respects_budget() {
        let cfg = BoundedTimeConfig::default();
        let dirty = tpcw_like();
        let epoch = cfg.steady_epoch(&dirty, TOTAL_PAGES);
        let produced = dirty.expected_new_hot_dirty(0, epoch) * PAGE_SIZE as f64;
        assert!(
            produced <= cfg.residue_budget_bytes() * 1.01,
            "epoch {epoch} produces {produced} bytes > budget"
        );
        assert!(epoch > SimDuration::from_millis(100));
        assert!(epoch <= cfg.bound);
    }

    #[test]
    fn heavier_writers_need_shorter_epochs() {
        let cfg = BoundedTimeConfig {
            reserve_bps: 1.0e6,
            ..BoundedTimeConfig::default()
        };
        let light = DirtyModel::new(50_000, 700.0, 0.01);
        let heavy = DirtyModel::new(400_000, 20_000.0, 0.01);
        let e_light = cfg.steady_epoch(&light, TOTAL_PAGES);
        let e_heavy = cfg.steady_epoch(&heavy, TOTAL_PAGES);
        assert!(e_heavy < e_light, "heavy {e_heavy} vs light {e_light}");
    }

    #[test]
    fn steady_stream_rate_tracks_dirty_rate() {
        let cfg = BoundedTimeConfig::default();
        let bps = cfg.steady_stream_bps(&tpcw_like(), TOTAL_PAGES);
        // ~700 pages/s x 4 KiB = 2.9 MB/s, reduced slightly by epoch
        // collisions.
        assert!((1.5e6..3.2e6).contains(&bps), "stream={bps}");
    }

    #[test]
    fn yank_downtime_proportional_to_residue() {
        let cfg = BoundedTimeConfig {
            ramp: RampPolicy::None,
            ..BoundedTimeConfig::default()
        };
        let out = simulate_final_commit(64e6, &tpcw_like(), TOTAL_PAGES, 32e6, &cfg);
        assert!((out.downtime.as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(out.checkpoints, 1);
        assert!(out.within_bound);
    }

    #[test]
    fn spotcheck_ramp_slashes_downtime_vs_yank() {
        // The paper's §5 optimization: ramping the checkpoint frequency
        // after the warning reduces downtime at the cost of degraded
        // performance during the warning.
        let stale = 64e6;
        let bw = 32e6;
        let yank = simulate_final_commit(
            stale,
            &tpcw_like(),
            TOTAL_PAGES,
            bw,
            &BoundedTimeConfig {
                ramp: RampPolicy::None,
                ..BoundedTimeConfig::default()
            },
        );
        let sc = simulate_final_commit(
            stale,
            &tpcw_like(),
            TOTAL_PAGES,
            bw,
            &BoundedTimeConfig::default(),
        );
        assert!(
            sc.downtime.as_secs_f64() < yank.downtime.as_secs_f64() / 4.0,
            "spotcheck {} vs yank {}",
            sc.downtime,
            yank.downtime
        );
        assert!(sc.checkpoints > 1);
        assert!(sc.within_bound);
        // The ramp transfers more bytes overall (re-dirtied pages re-sent).
        assert!(sc.bytes_transferred >= yank.bytes_transferred);
    }

    #[test]
    fn ramp_downtime_is_subsecond_for_typical_load() {
        // The paper reports millisecond-scale mechanism downtime; with the
        // EC2 ops excluded, the final pause should be well under a second.
        let out = simulate_final_commit(
            96e6,
            &tpcw_like(),
            TOTAL_PAGES,
            60e6,
            &BoundedTimeConfig::default(),
        );
        assert!(
            out.downtime.as_secs_f64() < 0.5,
            "downtime={}",
            out.downtime
        );
    }

    #[test]
    fn saturating_writer_cannot_ramp_below_its_rate() {
        // A writer whose distinct-dirty rate matches the link bandwidth
        // gains nothing from ramping; the commit still finishes (pause
        // flushes whatever remains) but with meaningful downtime.
        let heavy = DirtyModel::new(1_000_000, 16_000.0, 0.0); // ~64 MB/s
        let out = simulate_final_commit(
            96e6,
            &heavy,
            2_000_000,
            64e6,
            &BoundedTimeConfig::default(),
        );
        assert!(out.downtime.as_secs_f64() > 0.5, "downtime={}", out.downtime);
    }

    #[test]
    fn zero_stale_state_commits_instantly() {
        let out = simulate_final_commit(
            0.0,
            &DirtyModel::idle(),
            TOTAL_PAGES,
            32e6,
            &BoundedTimeConfig::default(),
        );
        assert!(out.downtime.is_zero());
        assert!(out.within_bound);
    }
}
