//! Page-level validation of the analytic migration models.
//!
//! The mechanism simulations use expected-value dirty-page dynamics; these
//! tests replay the same scenarios with *sampled* page-level dirtying
//! (actual `MemoryImage` bitmaps) and check that the analytic guarantees
//! hold path-wise: the bounded-time residue never exceeds its budget, the
//! checkpoint store converges to a complete image, and pre-copy round
//! sizes match the expectation model.

use spotcheck_backup::server::{BackupServer, BackupServerConfig};
use spotcheck_migrate::bounded::BoundedTimeConfig;
use spotcheck_migrate::precopy::{simulate_precopy, PreCopyConfig};
use spotcheck_nestedvm::memory::{DirtyModel, MemoryImage, PAGE_SIZE};
use spotcheck_nestedvm::vm::NestedVmId;
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::time::SimDuration;

/// A 512 MiB image keeps the sampled runs fast while spanning >100k pages.
const IMAGE_BYTES: u64 = 512 << 20;

fn tpcw_like() -> DirtyModel {
    DirtyModel::new(50_000, 700.0, 0.01)
}

/// The steady-state epoch chosen analytically must keep the *sampled*
/// per-epoch dirty residue within the bounded-time budget on every epoch.
#[test]
fn sampled_residue_never_exceeds_budget() {
    let cfg = BoundedTimeConfig::default();
    let dirty = tpcw_like();
    let total_pages = (IMAGE_BYTES / PAGE_SIZE) as usize;
    let epoch = cfg.steady_epoch(&dirty, total_pages);
    let budget_bytes = cfg.residue_budget_bytes();

    let mut image = MemoryImage::new(IMAGE_BYTES);
    let mut rng = SimRng::seed(0xBEEF);
    for i in 0..200 {
        dirty.sample_dirty(&mut image, epoch, &mut rng);
        let residue = image.dirty_bytes() as f64;
        assert!(
            residue <= budget_bytes * 1.10,
            "epoch {i}: sampled residue {residue} exceeds budget {budget_bytes}"
        );
        // The checkpointer drains the dirty set each epoch.
        image.take_dirty();
    }
}

/// Feeding sampled checkpoint epochs into a backup server's store
/// converges to a complete image once every hot and cold page has been
/// touched at least once (after the initial full sync).
#[test]
fn checkpoint_store_converges_with_initial_full_sync() {
    let mut server = BackupServer::new(BackupServerConfig::default());
    let vm = NestedVmId(1);
    let total_pages = (IMAGE_BYTES / PAGE_SIZE) as usize;
    server.assign(vm, total_pages).unwrap();

    // Initial full sync: every page present once.
    let mut image = MemoryImage::new(IMAGE_BYTES);
    image.mark_all_dirty();
    let full = image.take_dirty();
    server.store_mut(vm).unwrap().commit_pages(&full);
    assert!(server.store(vm).unwrap().is_complete());

    // Continuous epochs keep it complete and track bytes received.
    let dirty = tpcw_like();
    let mut rng = SimRng::seed(0xCAFE);
    let before = server.store(vm).unwrap().bytes_received;
    for _ in 0..20 {
        dirty.sample_dirty(&mut image, SimDuration::from_secs(10), &mut rng);
        let epoch_pages = image.take_dirty();
        server.store_mut(vm).unwrap().commit_pages(&epoch_pages);
    }
    let store = server.store(vm).unwrap();
    assert!(store.is_complete());
    assert!(store.bytes_received > before, "epochs must stream bytes");
    assert_eq!(store.commits, 21);
}

/// Pre-copy round payloads predicted by the expectation model match the
/// sampled page-level dynamics within a few percent.
#[test]
fn precopy_round_sizes_match_sampled_dynamics() {
    let dirty = tpcw_like();
    let cfg = PreCopyConfig {
        bandwidth_bps: 125e6,
        ..PreCopyConfig::default()
    };
    let analytic = simulate_precopy(IMAGE_BYTES, &dirty, &cfg);

    // Sampled replay: transfer the image, then iteratively transfer
    // whatever got dirtied during the previous round.
    let mut image = MemoryImage::new(IMAGE_BYTES);
    let mut rng = SimRng::seed(0xF00D);
    let mut to_send = IMAGE_BYTES as f64;
    let mut total_secs = 0.0;
    let mut total_bytes = 0.0;
    for _ in 0..cfg.max_rounds {
        let round_secs = to_send / cfg.bandwidth_bps;
        total_secs += round_secs;
        total_bytes += to_send;
        image.take_dirty();
        dirty.sample_dirty(&mut image, SimDuration::from_secs_f64(round_secs), &mut rng);
        let next = image.dirty_bytes() as f64;
        if next <= cfg.stop_threshold_bytes as f64 || next >= to_send {
            to_send = next;
            break;
        }
        to_send = next;
    }
    total_secs += to_send / cfg.bandwidth_bps;
    total_bytes += to_send;

    let a_total = analytic.total_duration.as_secs_f64();
    assert!(
        (total_secs - a_total).abs() / a_total < 0.05,
        "sampled total {total_secs}s vs analytic {a_total}s"
    );
    let a_bytes = analytic.bytes_transferred as f64;
    assert!(
        (total_bytes - a_bytes).abs() / a_bytes < 0.05,
        "sampled bytes {total_bytes} vs analytic {a_bytes}"
    );
}

/// Under a sampled revocation at a random instant, the dirty residue at
/// warning time is always within the bound's transfer capacity — the
/// "no risk of losing VM state" guarantee, path-wise.
#[test]
fn warning_time_residue_is_always_committable() {
    let cfg = BoundedTimeConfig::default();
    let dirty = tpcw_like();
    let total_pages = (IMAGE_BYTES / PAGE_SIZE) as usize;
    let epoch = cfg.steady_epoch(&dirty, total_pages);

    let mut rng = SimRng::seed(0xD00D);
    for trial in 0..50 {
        let mut image = MemoryImage::new(IMAGE_BYTES);
        // Run a random number of whole epochs plus a partial one, then
        // "receive the warning".
        let epochs = (trial % 7) + 1;
        for _ in 0..epochs {
            dirty.sample_dirty(&mut image, epoch, &mut rng);
            image.take_dirty();
        }
        let partial = epoch.mul_f64(0.01 * f64::from(trial % 100));
        dirty.sample_dirty(&mut image, partial, &mut rng);
        let residue = image.dirty_bytes() as f64;
        // Commit capacity within the bound at the reserved bandwidth.
        let capacity = cfg.reserve_bps * cfg.bound.as_secs_f64();
        assert!(
            residue <= capacity * 1.10,
            "trial {trial}: residue {residue} exceeds commit capacity {capacity}"
        );
    }
}
