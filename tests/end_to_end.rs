//! Workspace integration tests: the full stack (market generator -> cloud
//! simulator -> controller -> accounting) exercised together, plus
//! consistency checks between the closed-form analysis, the policy
//! simulator, and the event-driven controller.

use spotcheck_core::analysis::MarketModel;
use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::driver::SpotCheckSim;
use spotcheck_core::policy::MappingPolicy;
use spotcheck_core::sim::{run_policy, standard_traces, PolicyExperiment};
use spotcheck_core::types::VmStatus;
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_workloads::WorkloadKind;

/// Over generated market history, the §4.4 closed-form expected cost must
/// agree with the policy simulator's measured native cost for a single
/// medium pool (both integrate the same trace).
#[test]
fn closed_form_analysis_matches_policy_simulator() {
    let days = 60;
    let traces = standard_traces("us-east-1a", SimDuration::from_days(days), 11);
    let medium = &traces[0];
    let model = MarketModel::from_trace(
        medium,
        medium.on_demand_price,
        SimTime::ZERO,
        SimTime::from_days(days),
    )
    .expect("model estimable");

    let mut exp =
        PolicyExperiment::paper_default(MappingPolicy::OneM, MechanismKind::SpotCheckLazy, 11);
    exp.horizon = SimDuration::from_days(days);
    let report = run_policy(&traces, &exp);

    let analytic = model.expected_cost();
    let measured = report.pools[0].native_cost_per_vm_hr;
    assert!(
        (analytic - measured).abs() / analytic < 0.02,
        "closed form {analytic} vs simulated {measured}"
    );
}

/// The closed-form availability (23 s per revocation) must approximate the
/// policy simulator's.
#[test]
fn closed_form_availability_tracks_simulator() {
    let days = 60;
    let traces = standard_traces("us-east-1a", SimDuration::from_days(days), 13);
    let large = &traces[1];
    // Sanity: the model is estimable on this window.
    MarketModel::from_trace(
        large,
        large.on_demand_price,
        SimTime::ZERO,
        SimTime::from_days(days),
    )
    .unwrap();

    let mut exp =
        PolicyExperiment::paper_default(MappingPolicy::TwoML, MechanismKind::SpotCheckLazy, 13);
    exp.horizon = SimDuration::from_days(days);
    let report = run_policy(&traces, &exp);
    let large_pool = &report.pools[1];
    let measured_unavail =
        large_pool.downtime_per_vm.as_secs_f64() / (days as f64 * 86_400.0);

    // The simulator charges ~23 s of EC2 ops per revocation; the analysis
    // predicts D * (revocations / horizon).
    let d = 23.0;
    let analytic = d * large_pool.revocations as f64 / (days as f64 * 86_400.0);
    assert!(
        (measured_unavail - analytic).abs() / analytic < 0.25,
        "analysis {analytic} vs simulated {measured_unavail}"
    );
}

/// The event-driven controller and the trace-walking policy simulator must
/// agree on revocation counts for the same trace.
#[test]
fn controller_and_policy_sim_agree_on_revocations() {
    let days = 10;
    let traces = standard_traces("us-east-1a", SimDuration::from_days(days), 21);
    // Policy-sim revocation count for the medium pool.
    let mut exp =
        PolicyExperiment::paper_default(MappingPolicy::OneM, MechanismKind::SpotCheckLazy, 21);
    exp.horizon = SimDuration::from_days(days);
    let report = run_policy(&traces, &exp);
    let expected_revocations = report.pools[0].revocations as u64;

    // Controller run with one VM mapped to the same pool. The counts can
    // differ slightly: while the VM waits out a spike on on-demand, a
    // second spike in its home pool revokes nobody.
    let config = SpotCheckConfig {
        mapping: MappingPolicy::OneM,
        ..SpotCheckConfig::default()
    };
    let mut sim = SpotCheckSim::new(traces, config);
    let cust = sim.create_customer();
    let vm = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_days(days));
    let measured = sim.availability_report().revocations;

    assert_eq!(sim.controller().vm(vm).unwrap().status, VmStatus::Running);
    assert!(
        measured <= expected_revocations + 1,
        "controller saw {measured} revocations vs trace walk {expected_revocations}"
    );
    if expected_revocations > 0 {
        assert!(
            measured > 0,
            "trace had {expected_revocations} bid crossings; the controller saw none"
        );
    }
}

/// A VM that rides through many market cycles ends the run healthy, IP
/// intact, and cheaper than on-demand.
#[test]
fn month_long_churn_stays_cheap_and_available() {
    let days = 30;
    let traces = standard_traces("us-east-1a", SimDuration::from_days(days), 31);
    let config = SpotCheckConfig {
        mapping: MappingPolicy::TwoML,
        hot_spares: 1,
        ..SpotCheckConfig::default()
    };
    let mut sim = SpotCheckSim::new(traces, config);
    let cust = sim.create_customer();
    let vms: Vec<_> = (0..4)
        .map(|_| sim.request_server(cust, WorkloadKind::TpcW))
        .collect();
    let ips: Vec<_> = {
        sim.run_until(SimTime::from_hours(1));
        vms.iter()
            .map(|v| sim.controller().vm_ip(*v).unwrap())
            .collect()
    };
    sim.run_until(SimTime::from_days(days));

    let report = sim.availability_report();
    assert_eq!(report.vms, 4);
    assert!(
        report.availability_pct() > 99.5,
        "availability {}",
        report.availability_pct()
    );
    for (vm, ip) in vms.iter().zip(ips) {
        let r = sim.controller().vm(*vm).unwrap();
        assert_eq!(r.status, VmStatus::Running);
        assert_eq!(r.ip, ip, "IP must survive every migration");
    }
    let cost = sim.cost_report();
    let native = cost.native_cost / cost.vm_hours;
    assert!(native < 0.05, "native cost/hr {native}");
}

/// Determinism: the same seed reproduces the same run bit-for-bit at every
/// level of the stack.
#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let traces = standard_traces("us-east-1a", SimDuration::from_days(7), 99);
        let mut sim = SpotCheckSim::new(traces, SpotCheckConfig::default());
        let cust = sim.create_customer();
        let _vm = sim.request_server(cust, WorkloadKind::SpecJbb);
        sim.run_until(SimTime::from_days(7));
        let rep = sim.availability_report();
        let cost = sim.cost_report();
        (
            rep.revocations,
            rep.migrations,
            rep.total_downtime,
            format!("{:.12}", cost.native_cost),
        )
    };
    assert_eq!(run(), run());
}

/// Live-only protection is cheaper but riskier; bounded-time protection
/// never loses a VM even when the source is force-terminated mid-flight.
#[test]
fn mechanisms_cost_ranking_holds_end_to_end() {
    let days = 20;
    let run = |mech: MechanismKind| {
        let traces = standard_traces("us-east-1a", SimDuration::from_days(days), 55);
        let config = SpotCheckConfig {
            mechanism: mech,
            ..SpotCheckConfig::default()
        };
        let mut sim = SpotCheckSim::new(traces, config);
        let cust = sim.create_customer();
        let vm = sim.request_server(cust, WorkloadKind::TpcW);
        sim.run_until(SimTime::from_days(days));
        assert_eq!(sim.controller().vm(vm).unwrap().status, VmStatus::Running);
        let cost = sim.cost_report();
        let report_downtime = sim.availability_report().total_downtime;
        (cost.backup_cost, report_downtime)
    };
    let (live_backup, live_down) = run(MechanismKind::XenLive);
    let (lazy_backup, lazy_down) = run(MechanismKind::SpotCheckLazy);
    assert_eq!(live_backup, 0.0);
    assert!(lazy_backup >= 0.0);
    assert!(live_down <= lazy_down);
}
