//! Workspace-level randomized invariant tests: properties that must hold
//! across the stack for arbitrary market conditions and workload
//! parameters. Inputs come from seeded [`SimRng`] streams so every case is
//! reproducible from the iteration number printed on failure.

use spotcheck_core::analysis::MarketModel;
use spotcheck_core::policy::{BiddingPolicy, MappingPolicy};
use spotcheck_core::sim::{run_policy, PolicyExperiment};
use spotcheck_migrate::bounded::{simulate_final_commit, BoundedTimeConfig, RampPolicy};
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_migrate::precopy::{simulate_precopy, PreCopyConfig};
use spotcheck_nestedvm::memory::DirtyModel;
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

const CASES: u64 = 64;

fn f64_in(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

/// Builds a random piecewise-constant price trace.
fn random_trace(rng: &mut SimRng, type_name: &'static str, od: f64) -> PriceTrace {
    let n = rng.gen_range(1, 60) as usize;
    let mut series = StepSeries::new();
    let mut t = 0u64;
    series.push(SimTime::ZERO, od * 0.2);
    for _ in 0..n {
        t += rng.gen_range(1, 5_000);
        let ratio = f64_in(rng, 0.001, 1.0);
        series.push(SimTime::from_secs(t), (ratio * od * 2.0).max(0.0001));
    }
    PriceTrace::new(MarketId::new(type_name, "z"), od, series)
}

/// availability(bid) is monotone in the bid for any trace.
#[test]
fn availability_monotone_in_bid() {
    let mut rng = SimRng::seed(0xA17);
    for case in 0..CASES {
        let trace = random_trace(&mut rng, "m3.medium", 0.07);
        let end = SimTime::from_secs(10_000);
        let mut prev = 0.0;
        for i in 1..=10 {
            let bid = 0.07 * i as f64 / 5.0;
            if let Some(a) = trace.availability_at_bid(bid, SimTime::ZERO, end) {
                assert!(
                    a >= prev - 1e-12,
                    "case {case}: availability must rise with bid"
                );
                prev = a;
            }
        }
    }
}

/// The §4.4 expected cost never exceeds the on-demand price when
/// bidding the on-demand price, and never undercuts the trace minimum.
#[test]
fn expected_cost_is_bounded() {
    let mut rng = SimRng::seed(0xEC0);
    for case in 0..CASES {
        let trace = random_trace(&mut rng, "m3.medium", 0.07);
        let end = SimTime::from_secs(10_000);
        if let Some(m) = MarketModel::from_trace(&trace, 0.07, SimTime::ZERO, end) {
            let e = m.expected_cost();
            assert!(e <= 0.07 + 1e-12, "case {case}: E(c)={e}");
            let min = trace
                .prices
                .points()
                .iter()
                .map(|(_, v)| *v)
                .fold(f64::INFINITY, f64::min);
            assert!(e >= min.min(0.07) - 1e-12, "case {case}");
        }
    }
}

/// Pre-copy migration totals are always at least the single-pass time
/// and downtime never exceeds total duration.
#[test]
fn precopy_invariants() {
    let mut rng = SimRng::seed(0x92EC);
    for case in 0..CASES {
        let mem_gib = rng.gen_range(1, 16);
        let writes = f64_in(&mut rng, 0.0, 20_000.0);
        let hot_pages = rng.gen_range(1_000, 500_000) as usize;
        let dirty = DirtyModel::new(hot_pages, writes, 0.01);
        let out = simulate_precopy(mem_gib << 30, &dirty, &PreCopyConfig::default());
        let single_pass = (mem_gib << 30) as f64 / 125e6;
        assert!(
            out.total_duration.as_secs_f64() >= single_pass * 0.999,
            "case {case}"
        );
        assert!(out.downtime <= out.total_duration, "case {case}");
        assert!(out.bytes_transferred >= mem_gib << 30, "case {case}");
    }
}

/// The SpotCheck ramp never yields *more* downtime than Yank for the
/// same conditions.
#[test]
fn ramp_never_worse_than_yank() {
    let mut rng = SimRng::seed(0x2A39);
    for case in 0..CASES {
        let stale_mb = f64_in(&mut rng, 1.0, 128.0);
        let bw_mbps = f64_in(&mut rng, 4.0, 125.0);
        let writes = f64_in(&mut rng, 0.0, 5_000.0);
        let dirty = DirtyModel::new(50_000, writes, 0.01);
        let yank = simulate_final_commit(
            stale_mb * 1e6,
            &dirty,
            786_432,
            bw_mbps * 1e6,
            &BoundedTimeConfig {
                ramp: RampPolicy::None,
                ..BoundedTimeConfig::default()
            },
        );
        let sc = simulate_final_commit(
            stale_mb * 1e6,
            &dirty,
            786_432,
            bw_mbps * 1e6,
            &BoundedTimeConfig::default(),
        );
        assert!(
            sc.downtime.as_secs_f64() <= yank.downtime.as_secs_f64() + 1e-9,
            "case {case}: ramp {} vs yank {}",
            sc.downtime,
            yank.downtime
        );
    }
}

/// Policy-simulator sanity for arbitrary medium-market traces: cost is
/// never above on-demand + backup, availability and degradation are
/// valid percentages, and revocations match the trace's bid crossings.
#[test]
fn policy_sim_invariants() {
    let mut rng = SimRng::seed(0x901C);
    for case in 0..CASES {
        let medium = random_trace(&mut rng, "m3.medium", 0.07);
        let horizon = SimDuration::from_secs(10_000);
        let end = SimTime::ZERO + horizon;
        let expected_revs = medium.revocations_at_bid(0.07, SimTime::ZERO, end);
        let traces = vec![medium];
        let exp = PolicyExperiment {
            mapping: MappingPolicy::OneM,
            mechanism: MechanismKind::SpotCheckLazy,
            bidding: BiddingPolicy::OnDemandPrice,
            horizon,
            vms_per_backup: 40,
            workload: WorkloadKind::TpcW,
            storm_scaled_impacts: false,
            seed: 1,
        };
        let r = run_policy(&traces, &exp);
        assert!(
            r.avg_cost_per_vm_hr <= 0.07 + 0.007 + 1e-9,
            "case {case}: cost {}",
            r.avg_cost_per_vm_hr
        );
        assert!((0.0..=100.0).contains(&r.unavailability_pct), "case {case}");
        assert!((0.0..=100.0).contains(&r.degradation_pct), "case {case}");
        assert_eq!(r.pools[0].revocations, expected_revs, "case {case}");
        // Downtime only accrues when revocations occur.
        if expected_revs == 0 {
            assert_eq!(r.unavailability_pct, 0.0, "case {case}");
        } else {
            assert!(r.unavailability_pct > 0.0, "case {case}");
        }
    }
}
