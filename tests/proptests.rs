//! Workspace-level property tests: invariants that must hold across the
//! stack for arbitrary market conditions and workload parameters.

use proptest::prelude::*;
use spotcheck_core::analysis::MarketModel;
use spotcheck_core::policy::{BiddingPolicy, MappingPolicy};
use spotcheck_core::sim::{run_policy, PolicyExperiment};
use spotcheck_migrate::bounded::{simulate_final_commit, BoundedTimeConfig, RampPolicy};
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_migrate::precopy::{simulate_precopy, PreCopyConfig};
use spotcheck_nestedvm::memory::DirtyModel;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

/// Builds an arbitrary piecewise-constant price trace.
fn arb_trace(type_name: &'static str, od: f64) -> impl Strategy<Value = PriceTrace> {
    proptest::collection::vec((1u64..5_000, 0.001f64..1.0), 1..60).prop_map(move |steps| {
        let mut series = StepSeries::new();
        let mut t = 0u64;
        series.push(SimTime::ZERO, od * 0.2);
        for (dt, ratio) in steps {
            t += dt;
            series.push(SimTime::from_secs(t), (ratio * od * 2.0).max(0.0001));
        }
        PriceTrace::new(MarketId::new(type_name, "z"), od, series)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// availability(bid) is monotone in the bid for any trace.
    #[test]
    fn availability_monotone_in_bid(trace in arb_trace("m3.medium", 0.07)) {
        let end = SimTime::from_secs(10_000);
        let mut prev = 0.0;
        for i in 1..=10 {
            let bid = 0.07 * i as f64 / 5.0;
            if let Some(a) = trace.availability_at_bid(bid, SimTime::ZERO, end) {
                prop_assert!(a >= prev - 1e-12, "availability must rise with bid");
                prev = a;
            }
        }
    }

    /// The §4.4 expected cost never exceeds the on-demand price when
    /// bidding the on-demand price, and never undercuts the trace minimum.
    #[test]
    fn expected_cost_is_bounded(trace in arb_trace("m3.medium", 0.07)) {
        let end = SimTime::from_secs(10_000);
        if let Some(m) = MarketModel::from_trace(&trace, 0.07, SimTime::ZERO, end) {
            let e = m.expected_cost();
            prop_assert!(e <= 0.07 + 1e-12, "E(c)={e}");
            let min = trace
                .prices
                .points()
                .iter()
                .map(|(_, v)| *v)
                .fold(f64::INFINITY, f64::min);
            prop_assert!(e >= min.min(0.07) - 1e-12);
        }
    }

    /// Pre-copy migration totals are always at least the single-pass time
    /// and downtime never exceeds total duration.
    #[test]
    fn precopy_invariants(
        mem_gib in 1u64..16,
        writes in 0.0f64..20_000.0,
        hot_pages in 1_000usize..500_000,
    ) {
        let dirty = DirtyModel::new(hot_pages, writes, 0.01);
        let out = simulate_precopy(mem_gib << 30, &dirty, &PreCopyConfig::default());
        let single_pass = (mem_gib << 30) as f64 / 125e6;
        prop_assert!(out.total_duration.as_secs_f64() >= single_pass * 0.999);
        prop_assert!(out.downtime <= out.total_duration);
        prop_assert!(out.bytes_transferred >= mem_gib << 30);
    }

    /// The SpotCheck ramp never yields *more* downtime than Yank for the
    /// same conditions.
    #[test]
    fn ramp_never_worse_than_yank(
        stale_mb in 1.0f64..128.0,
        bw_mbps in 4.0f64..125.0,
        writes in 0.0f64..5_000.0,
    ) {
        let dirty = DirtyModel::new(50_000, writes, 0.01);
        let yank = simulate_final_commit(
            stale_mb * 1e6,
            &dirty,
            786_432,
            bw_mbps * 1e6,
            &BoundedTimeConfig { ramp: RampPolicy::None, ..BoundedTimeConfig::default() },
        );
        let sc = simulate_final_commit(
            stale_mb * 1e6,
            &dirty,
            786_432,
            bw_mbps * 1e6,
            &BoundedTimeConfig::default(),
        );
        prop_assert!(
            sc.downtime.as_secs_f64() <= yank.downtime.as_secs_f64() + 1e-9,
            "ramp {} vs yank {}",
            sc.downtime,
            yank.downtime
        );
    }

    /// Policy-simulator sanity for arbitrary medium-market traces: cost is
    /// never above on-demand + backup, availability and degradation are
    /// valid percentages, and revocations match the trace's bid crossings.
    #[test]
    fn policy_sim_invariants(medium in arb_trace("m3.medium", 0.07)) {
        let horizon = SimDuration::from_secs(10_000);
        let end = SimTime::ZERO + horizon;
        let expected_revs = medium.revocations_at_bid(0.07, SimTime::ZERO, end);
        let traces = vec![medium];
        let exp = PolicyExperiment {
            mapping: MappingPolicy::OneM,
            mechanism: MechanismKind::SpotCheckLazy,
            bidding: BiddingPolicy::OnDemandPrice,
            horizon,
            vms_per_backup: 40,
            workload: WorkloadKind::TpcW,
            storm_scaled_impacts: false,
            seed: 1,
        };
        let r = run_policy(&traces, &exp);
        prop_assert!(r.avg_cost_per_vm_hr <= 0.07 + 0.007 + 1e-9, "cost {}", r.avg_cost_per_vm_hr);
        prop_assert!((0.0..=100.0).contains(&r.unavailability_pct));
        prop_assert!((0.0..=100.0).contains(&r.degradation_pct));
        prop_assert_eq!(r.pools[0].revocations, expected_revs);
        // Downtime only accrues when revocations occur.
        if expected_revs == 0 {
            prop_assert_eq!(r.unavailability_pct, 0.0);
        } else {
            prop_assert!(r.unavailability_pct > 0.0);
        }
    }
}
