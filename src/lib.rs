//! # spotcheck-suite
//!
//! Umbrella crate for the SpotCheck reproduction (EuroSys 2015): re-exports
//! every component crate, and hosts the runnable examples (`examples/`) and
//! cross-crate integration tests (`tests/`).
//!
//! Start with [`core`] (the SpotCheck controller and policies) and the
//! `quickstart` example:
//!
//! ```text
//! cargo run --example quickstart
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spotcheck_backup as backup;
pub use spotcheck_cloudsim as cloudsim;
pub use spotcheck_core as core;
pub use spotcheck_migrate as migrate;
pub use spotcheck_nestedvm as nestedvm;
pub use spotcheck_simcore as simcore;
pub use spotcheck_spotmarket as spotmarket;
pub use spotcheck_workloads as workloads;
